"""Tests for RNS polynomial arithmetic and representation handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, RepresentationError
from repro.nt.primes import find_ntt_primes
from repro.rns.poly import PolyRns

DEGREE = 32
MODULI = tuple(find_ntt_primes(DEGREE, 24, 3))


def rng():
    return np.random.default_rng(42)


def test_from_int_roundtrip_small_signed():
    coeffs = list(range(-16, 16))
    poly = PolyRns.from_int_coeffs(DEGREE, MODULI, coeffs)
    assert poly.to_int_coeffs() == coeffs


def test_from_int_wrong_length():
    with pytest.raises(ParameterError):
        PolyRns.from_int_coeffs(DEGREE, MODULI, [1, 2, 3])


def test_add_sub_neg_consistency():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    b = PolyRns.uniform_random(DEGREE, MODULI, r)
    zero = (a + b) - b - a
    assert np.all(zero.data == 0)
    assert np.all(((a + (-a)).data) == 0)


def test_mul_requires_eval_rep():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    with pytest.raises(RepresentationError):
        _ = a * a


def test_mul_matches_integer_polynomial_product():
    a = PolyRns.from_int_coeffs(DEGREE, MODULI, [1] + [0] * (DEGREE - 1))
    x = [0] * DEGREE
    x[1] = 3
    b = PolyRns.from_int_coeffs(DEGREE, MODULI, x)
    prod = (a.to_eval() * b.to_eval()).to_coeff()
    expected = [0] * DEGREE
    expected[1] = 3
    assert prod.to_int_coeffs() == expected


def test_negacyclic_wraparound_sign():
    # X^(N-1) * X^2 = X^(N+1) = -X
    a_coeffs = [0] * DEGREE
    a_coeffs[DEGREE - 1] = 1
    b_coeffs = [0] * DEGREE
    b_coeffs[2] = 1
    a = PolyRns.from_int_coeffs(DEGREE, MODULI, a_coeffs)
    b = PolyRns.from_int_coeffs(DEGREE, MODULI, b_coeffs)
    prod = (a.to_eval() * b.to_eval()).to_coeff()
    expected = [0] * DEGREE
    expected[1] = -1
    assert prod.to_int_coeffs() == expected


def test_scalar_mul():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    doubled = a.scalar_mul(2)
    assert np.array_equal(doubled.data, (a.data * np.uint64(2)) % a._mods_column())


def test_scalar_mul_per_limb_validates_length():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    with pytest.raises(ParameterError):
        a.scalar_mul_per_limb([1])


def test_rep_conversion_roundtrip():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    assert np.array_equal(a.to_eval().to_coeff().data, a.data)


def test_incompatible_moduli_rejected():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    b = PolyRns.uniform_random(DEGREE, MODULI[:2], r)
    with pytest.raises(RepresentationError):
        _ = a + b


def test_limbs_projection_and_concat():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    first = a.limbs(MODULI[:1])
    rest = a.limbs(MODULI[1:])
    rebuilt = first.concat(rest)
    assert rebuilt.moduli == MODULI
    assert np.array_equal(rebuilt.data, a.data)


def test_concat_rejects_overlap():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    with pytest.raises(ParameterError):
        a.concat(a)


def test_limbs_missing_modulus():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    with pytest.raises(ParameterError):
        a.limbs((999983,))


def test_drop_last_limb():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    dropped = a.drop_last_limb()
    assert dropped.moduli == MODULI[:-1]
    single = PolyRns.uniform_random(DEGREE, MODULI[:1], r)
    with pytest.raises(ParameterError):
        single.drop_last_limb()


def test_automorphism_commutes_across_reps():
    r = rng()
    a = PolyRns.uniform_random(DEGREE, MODULI, r)
    galois = 5
    via_coeff = a.automorphism(galois).to_eval()
    via_eval = a.to_eval().automorphism(galois)
    assert np.array_equal(via_coeff.data, via_eval.data)


def test_ternary_secret_properties():
    r = rng()
    s = PolyRns.small_ternary(DEGREE, MODULI, r, hamming_weight=8)
    coeffs = s.to_int_coeffs()
    assert sum(1 for c in coeffs if c != 0) == 8
    assert all(c in (-1, 0, 1) for c in coeffs)


def test_gaussian_error_is_small():
    r = rng()
    e = PolyRns.gaussian_error(DEGREE, MODULI, r)
    assert all(abs(c) < 40 for c in e.to_int_coeffs())


@given(st.integers(0, 2**32))
@settings(max_examples=25, deadline=None)
def test_crt_roundtrip_random_big_ints(seed):
    r = np.random.default_rng(seed)
    product = 1
    for q in MODULI:
        product *= q
    values = [int(r.integers(0, 2**62)) % product for _ in range(DEGREE)]
    centered = [v - product if v > product // 2 else v for v in values]
    poly = PolyRns.from_int_coeffs(DEGREE, MODULI, centered)
    assert poly.to_int_coeffs() == centered
