"""Byte-granular store accounting: evictions and integrity discards must
be priced in bytes, not just counted, so occupancy reconstructs from the
traffic ledger (occupied == generated - evicted - discarded)."""

import numpy as np

from repro.params import TOY
from repro.runtime.accounting import ByteBudgetCache, StoreStats
from repro.runtime.keystore import KeyStore
from repro.ckks.context import CkksContext


def _expander(size):
    return lambda: bytearray(size)


def _nbytes(value):
    return len(value)


# ----------------------------------------------------------- cache unit level


def test_eviction_charges_bytes():
    cache = ByteBudgetCache(budget_bytes=100)
    cache.get("a", _expander(60), _nbytes)
    cache.get("b", _expander(60), _nbytes)  # evicts "a"
    assert cache.stats.evictions == 1
    assert cache.stats.evicted_bytes == 60
    assert cache.occupied_bytes == 60


def test_multi_entry_eviction_sums_bytes():
    cache = ByteBudgetCache(budget_bytes=100)
    for key, size in (("a", 40), ("b", 30), ("c", 20)):
        cache.get(key, _expander(size), _nbytes)
    cache.get("d", _expander(90), _nbytes)  # evicts all three
    assert cache.stats.evictions == 3
    assert cache.stats.evicted_bytes == 90
    assert cache.occupied_bytes == 90


def test_occupancy_reconstructs_from_ledger():
    cache = ByteBudgetCache(budget_bytes=128)
    rng = np.random.default_rng(5)
    for i in range(50):
        cache.get(f"k{i % 9}", _expander(int(rng.integers(10, 60))), _nbytes)
    stats = cache.stats
    assert stats.evicted_bytes > 0
    assert cache.occupied_bytes == stats.retained_generated_bytes
    assert (
        cache.occupied_bytes
        == stats.generated_bytes - stats.evicted_bytes - stats.discarded_bytes
    )


def test_discard_accounting_is_opt_in():
    cache = ByteBudgetCache()
    cache.get("a", _expander(64), _nbytes)
    cache.get("b", _expander(32), _nbytes)
    assert cache.discard("a")  # replacement-style drop: no byte charge
    assert cache.stats.discarded_bytes == 0
    assert cache.discard("b", account=True)  # integrity-style drop: charged
    assert cache.stats.discarded_bytes == 32
    assert cache.occupied_bytes == 0
    assert cache.stats.retained_generated_bytes == 64


def test_streamed_oversize_entries_are_not_evictions():
    cache = ByteBudgetCache(budget_bytes=10)
    cache.get("huge", _expander(100), _nbytes)  # streamed, never resident
    assert cache.stats.generated_bytes == 100
    assert cache.stats.evictions == 0
    assert cache.stats.evicted_bytes == 0
    assert cache.occupied_bytes == 0


def test_reset_clears_byte_fields():
    stats = StoreStats(
        hits=1, misses=2, evictions=3, discards=4,
        fetched_bytes=5, generated_bytes=6, evicted_bytes=7, discarded_bytes=8,
    )
    stats.reset()
    assert stats.evicted_bytes == 0
    assert stats.discarded_bytes == 0
    assert stats.retained_generated_bytes == 0


# ------------------------------------------------------- key store integration


def test_keystore_budget_eviction_byte_ledger():
    """A thrashing evk working set must balance its byte ledger."""
    store = KeyStore(budget_bytes=None)
    ctx = CkksContext.create(TOY, rotations=(1, 2, 4), seed=7, key_store=store)
    # Price one expanded key, then shrink the budget below two of them so
    # alternating rotations evict each other.
    ct = ctx.encrypt(np.full(TOY.max_slots, 0.25, dtype=np.complex128))
    ctx.evaluator.rotate(ct, 1)
    one_key = store.cached_bytes
    assert one_key > 0

    store = KeyStore(budget_bytes=int(one_key * 1.5))
    ctx = CkksContext.create(TOY, rotations=(1, 2, 4), seed=7, key_store=store)
    ct = ctx.encrypt(np.full(TOY.max_slots, 0.25, dtype=np.complex128))
    for amount in (1, 2, 4, 1, 2, 4):
        ctx.evaluator.rotate(ct, amount)
    stats = store.stats
    assert stats.evictions > 0
    assert stats.evicted_bytes > 0
    assert stats.evicted_bytes % one_key == 0  # whole keys, priced exactly
    assert store.cached_bytes == stats.retained_generated_bytes
