"""KeyStore behaviour: lazy a-part materialization, LRU byte budget,
traffic accounting, and bit-identical HE results through the store path."""

import numpy as np
import pytest

from repro.analysis.datasizes import keystore_footprint
from repro.errors import KeyError_, MissingEvkError
from repro.params import TOY
from repro.runtime.accounting import ByteBudgetCache
from repro.runtime.keystore import KeyStore
from repro.ckks.context import CkksContext

ROTS = (1, 2)


def make_ctx(budget=None, seed=41):
    return CkksContext.create(
        TOY, rotations=ROTS, seed=seed, key_store=KeyStore(budget_bytes=budget)
    )


@pytest.fixture(scope="module")
def eager_ctx():
    return CkksContext.create(TOY, rotations=ROTS, seed=41)


@pytest.fixture(scope="module")
def store_ctx():
    return make_ctx()


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(3)
    return rng.uniform(-1, 1, TOY.max_slots).astype(np.complex128)


# -------------------------------------------------------------- bit-identity


def test_hmult_bit_identical_through_store(eager_ctx, store_ctx, message):
    ct_e = eager_ctx.encrypt(message)
    ct_s = store_ctx.encrypt(message)
    out_e = eager_ctx.evaluator.rescale(eager_ctx.evaluator.mul(ct_e, ct_e))
    out_s = store_ctx.evaluator.rescale(store_ctx.evaluator.mul(ct_s, ct_s))
    assert np.array_equal(out_e.b.data, out_s.b.data)
    assert np.array_equal(out_e.a.data, out_s.a.data)


def test_hrot_bit_identical_through_store(eager_ctx, store_ctx, message):
    ct_e = eager_ctx.encrypt(message)
    ct_s = store_ctx.encrypt(message)
    for r in ROTS:
        out_e = eager_ctx.evaluator.rotate(ct_e, r)
        out_s = store_ctx.evaluator.rotate(ct_s, r)
        assert np.array_equal(out_e.b.data, out_s.b.data)
        assert np.array_equal(out_e.a.data, out_s.a.data)


def test_hoisted_rotations_bit_identical_through_store(
    eager_ctx, store_ctx, message
):
    ct_e = eager_ctx.encrypt(message)
    ct_s = store_ctx.encrypt(message)
    out_e = eager_ctx.evaluator.rotate_many_hoisted(ct_e, list(ROTS))
    out_s = store_ctx.evaluator.rotate_many_hoisted(ct_s, list(ROTS))
    for r in ROTS:
        assert np.array_equal(out_e[r].b.data, out_s[r].b.data)
        assert np.array_equal(out_e[r].a.data, out_s[r].a.data)


def test_store_backed_results_decrypt(store_ctx, message):
    ct = store_ctx.encrypt(message)
    out = store_ctx.decrypt(store_ctx.evaluator.rotate(ct, 1))
    assert np.allclose(out, np.roll(message, -1), atol=1e-2)


# ---------------------------------------------------------------- accounting


def test_generate_once_then_hit(message):
    ctx = make_ctx()
    store = ctx.key_store
    store.reset_stats()
    ct = ctx.encrypt(message)
    ctx.evaluator.mul(ct, ct)
    assert store.stats.misses == 1 and store.stats.hits == 0
    one_key = TOY.dnum * TOY.total_limbs * TOY.degree * 8
    assert store.stats.generated_bytes == one_key
    assert store.stats.fetched_bytes == one_key  # b halves are the same size
    ctx.evaluator.mul(ct, ct)
    assert store.stats.hits == 1 and store.stats.misses == 1
    # The hit fetched the b half again but generated nothing new.
    assert store.stats.generated_bytes == one_key
    assert store.stats.fetched_bytes == 2 * one_key


def test_zero_budget_regenerates_every_time(message):
    ctx = make_ctx(budget=0)
    store = ctx.key_store
    store.reset_stats()
    ct = ctx.encrypt(message)
    ctx.evaluator.mul(ct, ct)
    ctx.evaluator.mul(ct, ct)
    assert store.stats.misses == 2 and store.stats.hits == 0
    assert store.cached_bytes == 0


def test_zero_budget_disables_caching_even_for_empty_entries():
    """Budget 0 means *no* caching -- a zero-sized value must not sneak in
    (0 + 0 <= 0 would have admitted it under a naive fit check)."""
    cache = ByteBudgetCache(budget_bytes=0)
    calls = []

    def expand():
        calls.append(1)
        return []

    cache.get("k", expand=expand, nbytes=lambda v: 0)
    cache.get("k", expand=expand, nbytes=lambda v: 0)
    assert len(calls) == 2
    assert len(cache) == 0 and cache.occupied_bytes == 0


def test_oversized_key_streams_without_pinning(message):
    """A single key larger than the whole budget is expanded and handed
    out but never becomes resident (it would otherwise pin the cache)."""
    one_key = TOY.dnum * TOY.total_limbs * TOY.degree * 8
    ctx = make_ctx(budget=one_key - 1)
    store = ctx.key_store
    store.reset_stats()
    ct = ctx.encrypt(message)
    ctx.evaluator.mul(ct, ct)
    ctx.evaluator.mul(ct, ct)
    assert store.stats.misses == 2 and store.stats.hits == 0
    assert store.cached_bytes == 0
    assert store.stats.evictions == 0  # nothing resident to evict


def test_oversized_insert_does_not_evict_smaller_residents():
    cache = ByteBudgetCache(budget_bytes=100)
    cache.get("small", expand=lambda: "s", nbytes=lambda v: 40)
    cache.get("big", expand=lambda: "B", nbytes=lambda v: 1000)
    assert cache.occupied_bytes == 40
    assert cache.peek("small") == "s"
    assert "big" not in cache


def test_lru_eviction_under_tight_budget(message):
    # Budget fits exactly one key's expanded a-parts.
    one_key = TOY.dnum * TOY.total_limbs * TOY.degree * 8
    ctx = make_ctx(budget=one_key)
    store = ctx.key_store
    store.reset_stats()
    ct = ctx.encrypt(message)
    ctx.evaluator.rotate(ct, 1)   # miss, cache rot:1
    ctx.evaluator.rotate(ct, 2)   # miss, evicts rot:1
    ctx.evaluator.rotate(ct, 1)   # miss again
    assert store.stats.misses == 3
    assert store.stats.evictions >= 2
    assert store.cached_bytes <= one_key


def test_hot_key_stays_resident_under_tight_budget(message):
    one_key = TOY.dnum * TOY.total_limbs * TOY.degree * 8
    ctx = make_ctx(budget=one_key)
    store = ctx.key_store
    store.reset_stats()
    ct = ctx.encrypt(message)
    for _ in range(4):
        ctx.evaluator.rotate(ct, 1)
    assert store.stats.misses == 1 and store.stats.hits == 3
    assert store.stats.hit_rate == pytest.approx(0.75)


# ----------------------------------------------------------------- footprint


def test_footprint_compression_is_about_2x(store_ctx):
    store = store_ctx.key_store
    assert store.stored_bytes < store.eager_bytes
    assert store.compression == pytest.approx(2.0, rel=0.01)


def test_keystore_footprint_report(message):
    ctx = make_ctx()
    store = ctx.key_store
    ct = ctx.encrypt(message)
    ctx.evaluator.mul(ct, ct)
    fp = keystore_footprint(store)
    assert fp.compression == pytest.approx(2.0, rel=0.01)
    assert fp.generated_mb > 0
    assert fp.fetched_mb > 0
    assert fp.stored_mb == pytest.approx(fp.eager_mb / fp.compression)


# ----------------------------------------------------- eviction mid-program


def test_fetch_parts_after_midprogram_eviction_bit_identical(message):
    """Expand -> evict -> re-fetch must regenerate the exact same a-parts
    (the seed is the source of truth, the cache is only an accelerator)."""
    ctx = make_ctx()
    store = ctx.key_store
    evk = store.get("mult")
    _, first = evk.fetch_parts()
    first_copies = [p.data.copy() for p in first]
    assert store.discard_cached("mult")
    _, again = evk.fetch_parts()
    for old, new in zip(first_copies, again):
        assert np.array_equal(old, new.data)


def test_results_bit_identical_across_clear_cache(message):
    """A full cache flush between ops changes nothing but the accounting."""
    eager = CkksContext.create(TOY, rotations=ROTS, seed=41)
    ctx = make_ctx()
    store = ctx.key_store
    ct_e = eager.encrypt(message)
    ct_s = ctx.encrypt(message)
    out_e = eager.evaluator.mul(ct_e, ct_e)
    out_s = ctx.evaluator.mul(ct_s, ct_s)
    store.clear_cache()
    out_e2 = eager.evaluator.mul(out_e, out_e)
    out_s2 = ctx.evaluator.mul(out_s, out_s)
    assert np.array_equal(out_e2.b.data, out_s2.b.data)
    assert np.array_equal(out_e2.a.data, out_s2.a.data)
    assert store.stats.misses >= 2  # the flush forced a regeneration


# -------------------------------------------------------------- error paths


def test_missing_evk_error_name_and_alias(store_ctx):
    """`MissingEvkError` is the real name; `KeyError_` stays as a
    deprecated alias so existing call sites keep working."""
    assert KeyError_ is MissingEvkError
    with pytest.raises(MissingEvkError):
        store_ctx.key_store.get("conj:nope")


def test_store_get_unknown_kind_raises(store_ctx):
    with pytest.raises(KeyError_) as err:
        store_ctx.key_store.get("rot:999")
    assert "rot:999" in str(err.value)
    assert "available" in str(err.value)


def test_chain_falls_back_to_store_registry(store_ctx):
    """A key present in the store but not the chain dict is still found."""
    chain = store_ctx.keys
    key = chain.rotations.pop(1)
    try:
        assert chain.rotation(1) is key
    finally:
        chain.rotations[1] = key
