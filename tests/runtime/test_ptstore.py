"""RuntimePlaintextStore: on-demand generation of linear-transform factor
plaintexts, bit-identical to eager encoding, with budgeted caching."""

import numpy as np
import pytest

from repro.params import TOY
from repro.runtime.ptstore import RuntimePlaintextStore
from repro.ckks.context import CkksContext
from repro.ckks.linear import HomLinearTransform


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(TOY, rotations=(1, 2, 4, 8, 16), seed=77)


@pytest.fixture(scope="module")
def matrix(ctx):
    n = ctx.params.max_slots
    rng = np.random.default_rng(5)
    # A banded matrix: few diagonals keeps the transform cheap.
    m = np.zeros((n, n), dtype=np.complex128)
    rows = np.arange(n)
    for d in (0, 1, 2):
        m[rows, (rows + d) % n] = rng.uniform(-1, 1, n)
    return m


@pytest.fixture(scope="module")
def message(ctx):
    rng = np.random.default_rng(6)
    return rng.uniform(-1, 1, ctx.params.max_slots).astype(np.complex128)


def test_generated_plaintexts_bit_identical_to_eager(ctx, matrix, message):
    transform = HomLinearTransform(matrix, name="rtpt")
    ct = ctx.encrypt(message)
    store = RuntimePlaintextStore(ctx)
    eager = transform.evaluate(ctx, ct, mode="minks")
    generated = transform.evaluate(ctx, ct, mode="minks", pt_store=store)
    assert np.array_equal(eager.b.data, generated.b.data)
    assert np.array_equal(eager.a.data, generated.a.data)
    assert store.fetches > 0


def test_transform_through_store_is_correct(ctx, matrix, message):
    transform = HomLinearTransform(matrix, name="rtpt2")
    store = RuntimePlaintextStore(ctx)
    out_ct = transform.evaluate(
        ctx, ctx.encrypt(message), mode="minks", pt_store=store
    )
    out = ctx.decrypt(out_ct)
    assert np.allclose(out, transform.reference(message), atol=1e-2)


def test_accounting_and_reuse(ctx, matrix, message):
    transform = HomLinearTransform(matrix, name="rtpt3")
    store = RuntimePlaintextStore(ctx)
    ct = ctx.encrypt(message)
    transform.evaluate(ctx, ct, mode="minks", pt_store=store)
    first_misses = store.stats.misses
    assert first_misses > 0 and store.stats.hits == 0
    assert store.stats.generated_bytes > 0
    # Same transform at the same level: every expansion is reused.
    transform.evaluate(ctx, ct, mode="minks", pt_store=store)
    assert store.stats.misses == first_misses
    assert store.stats.hits == first_misses


def test_compact_storage_is_level_independent(ctx, matrix, message):
    """Stored footprint is N words per diagonal, not (l+1)*N."""
    transform = HomLinearTransform(matrix, name="rtpt4")
    store = RuntimePlaintextStore(ctx)
    transform.evaluate(ctx, ctx.encrypt(message), mode="minks", pt_store=store)
    diagonals = len(store._compact)
    assert store.stored_bytes == diagonals * ctx.params.degree * 8
    assert store.cached_bytes > store.stored_bytes  # expanded forms are bigger


def test_zero_budget_streams(ctx, matrix, message):
    transform = HomLinearTransform(matrix, name="rtpt5")
    store = RuntimePlaintextStore(ctx, budget_bytes=0)
    ct = ctx.encrypt(message)
    transform.evaluate(ctx, ct, mode="minks", pt_store=store)
    first_misses = store.stats.misses
    transform.evaluate(ctx, ct, mode="minks", pt_store=store)
    assert store.stats.hits == 0
    assert store.cached_bytes == 0
    assert store.stats.misses == 2 * first_misses


def test_same_key_at_new_scale_is_not_served_stale(ctx):
    """Scale is part of the cache identity: a key re-fetched at a
    different scale must be re-encoded, not mislabeled."""
    store = RuntimePlaintextStore(ctx)
    values = np.full(ctx.params.max_slots, 0.5)
    moduli = ctx.basis.q_moduli
    pt1 = store.get("diag", values, moduli, scale=2.0**28)
    pt2 = store.get("diag", values, moduli, scale=2.0**20)
    assert pt1.scale != pt2.scale
    assert not np.array_equal(pt1.poly.data, pt2.poly.data)
    assert len(store._compact) == 2
