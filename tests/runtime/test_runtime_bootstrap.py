"""End-to-end acceptance: a full bootstrap through the runtime subsystem
(seed-compressed KeyStore + RuntimePlaintextStore) is bit-identical to the
eager path."""

import numpy as np
import pytest

from repro.params import TOY_BOOT
from repro.bootstrap.pipeline import Bootstrapper
from repro.runtime.keystore import KeyStore
from repro.runtime.ptstore import RuntimePlaintextStore
from repro.ckks.context import CkksContext

SEED = 67


@pytest.fixture(scope="module")
def message():
    rng = np.random.default_rng(1)
    return rng.uniform(-0.25, 0.25, TOY_BOOT.degree // 2).astype(np.complex128)


@pytest.fixture(scope="module")
def results(message):
    """One eager and one runtime-store bootstrap of the same ciphertext."""
    eager = CkksContext.create(TOY_BOOT, seed=SEED)
    runtime = CkksContext.create(TOY_BOOT, seed=SEED, key_store=KeyStore())
    pt_store = RuntimePlaintextStore(runtime)
    out = {}
    for name, ctx, store in (("eager", eager, None), ("runtime", runtime, pt_store)):
        boot = Bootstrapper(ctx, pt_store=store)
        ct0 = ctx.evaluator.drop_to_level(ctx.encrypt(message), 0)
        out[name] = (ctx, boot.bootstrap(ct0, mode="minks"))
    return out, runtime.key_store, pt_store


def test_bootstrap_bit_identical_through_runtime_stores(results):
    out, _, _ = results
    (_, eager_ct), (_, runtime_ct) = out["eager"], out["runtime"]
    assert eager_ct.scale == runtime_ct.scale
    assert np.array_equal(eager_ct.b.data, runtime_ct.b.data)
    assert np.array_equal(eager_ct.a.data, runtime_ct.a.data)


def test_bootstrap_through_stores_recovers_message(results, message):
    out, _, _ = results
    ctx, refreshed = out["runtime"]
    decoded = ctx.decrypt(refreshed)
    assert np.max(np.abs(decoded - message)) < 0.1


def test_keystore_served_the_bootstrap(results):
    _, key_store, _ = results
    stats = key_store.stats
    assert stats.misses > 0 and stats.generated_bytes > 0
    # Min-KS reuses two rotation keys per transform heavily: the expanded
    # working set must be hit far more often than it is generated.
    assert stats.hits > 10 * stats.misses
    assert key_store.compression == pytest.approx(2.0, rel=0.01)


def test_ptstore_served_the_dft_factors(results):
    _, _, pt_store = results
    assert pt_store.fetches > 0
    assert pt_store.stats.generated_bytes > 0
    # Compact descriptions are one N-word vector per distinct diagonal.
    assert pt_store.stored_bytes == len(pt_store._compact) * TOY_BOOT.degree * 8
