"""Seed expansion invariant: a SeededPoly expands bit-identically to the
polynomial the eager path sampled, independent of order and other draws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rng as rng_streams
from repro.nt.primes import find_ntt_primes
from repro.params import TOY
from repro.rns.poly import PolyRns
from repro.runtime.seeded import SeededPoly
from repro.ckks.context import CkksContext
from repro.runtime.keystore import KeyStore

DEGREE = 64
MODULI = tuple(find_ntt_primes(DEGREE, 28, 3))


# ----------------------------------------------------------------- streams


def test_streams_are_deterministic():
    a = rng_streams.stream(7, "keygen").integers(0, 1 << 30, size=16)
    b = rng_streams.stream(7, "keygen").integers(0, 1 << 30, size=16)
    assert np.array_equal(a, b)


def test_streams_are_independent_by_id():
    a = rng_streams.stream(7, "keygen").integers(0, 1 << 30, size=16)
    b = rng_streams.stream(7, "noise").integers(0, 1 << 30, size=16)
    c = rng_streams.stream(8, "keygen").integers(0, 1 << 30, size=16)
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_derive_key_is_stable_across_calls():
    key = rng_streams.derive_key(2022, ("evk", "rot:5", 2))
    assert key == rng_streams.derive_key(2022, ("evk", "rot:5", 2))
    assert 0 <= key < 1 << 128


# ---------------------------------------------------------------- expansion


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(min_value=0, max_value=2**63 - 1))
def test_expansion_is_deterministic(seed):
    sp = SeededPoly(DEGREE, MODULI, seed, ("evk", "mult", 0))
    first = sp.expand()
    second = sp.expand()
    assert first.rep == "eval"
    assert np.array_equal(first.data, second.data)


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(min_value=0, max_value=2**63 - 1))
def test_expansion_matches_eager_sampling(seed):
    """The exact dataflow the eager keygen uses: same stream, same words,
    same kernel-layer NTT."""
    sp = SeededPoly(DEGREE, MODULI, seed, ("evk", "conj", 1))
    gen = rng_streams.stream(seed, "evk", "conj", 1)
    eager = PolyRns.uniform_random(DEGREE, MODULI, gen).to_eval()
    assert np.array_equal(sp.expand().data, eager.data)


def test_expansion_is_order_independent():
    """Draws on unrelated streams between expansions must not matter."""
    sp = SeededPoly(DEGREE, MODULI, 99, ("evk", "rot:3", 0))
    before = sp.expand()
    rng_streams.stream(99, "keygen").normal(size=1000)
    rng_streams.stream(99, "noise", "evk", "rot:3", 0).normal(size=1000)
    assert np.array_equal(sp.expand().data, before.data)


def test_footprint_properties():
    sp = SeededPoly(DEGREE, MODULI, 1, ("pk", "a"))
    assert sp.seeded_bytes == rng_streams.SEED_BYTES
    assert sp.expanded_bytes == len(MODULI) * DEGREE * 8
    assert sp.seeded_bytes < sp.expanded_bytes


# ----------------------------------------------- eager vs seeded key material


@pytest.fixture(scope="module")
def contexts():
    eager = CkksContext.create(TOY, rotations=(1, 3), seed=17)
    seeded = CkksContext.create(
        TOY, rotations=(1, 3), seed=17, key_store=KeyStore()
    )
    return eager, seeded


def test_seeded_keys_bit_identical_to_eager(contexts):
    """The acceptance invariant: every evk half matches exactly."""
    eager, seeded = contexts
    pairs = [(eager.keys.mult, seeded.keys.mult),
             (eager.keys.conjugation, seeded.keys.conjugation)]
    for r in (1, 3):
        pairs.append((eager.keys.rotation(r), seeded.keys.rotation(r)))
    for ek, sk in pairs:
        assert ek.kind == sk.kind
        assert ek.dnum == sk.dnum
        for i in range(ek.dnum):
            assert np.array_equal(ek.b_parts[i].data, sk.b_parts[i].data)
            assert np.array_equal(ek.a_parts[i].data, sk.a_parts[i].data)


def test_secret_and_public_keys_match(contexts):
    eager, seeded = contexts
    assert np.array_equal(eager.keys.secret.poly.data, seeded.keys.secret.poly.data)
    assert np.array_equal(eager.keys.public.b.data, seeded.keys.public.b.data)
    assert np.array_equal(eager.keys.public.a.data, seeded.keys.public.a.data)


def test_key_material_independent_of_generation_order():
    """Per-key streams: generating rotations in a different order (or
    lazily, after the fact) yields the same key material."""
    a = CkksContext.create(TOY, rotations=(2, 5), seed=23)
    b = CkksContext.create(TOY, rotations=(5,), seed=23)
    b.ensure_rotation_keys([2])
    for r in (2, 5):
        ka, kb = a.keys.rotation(r), b.keys.rotation(r)
        for i in range(ka.dnum):
            assert np.array_equal(ka.b_parts[i].data, kb.b_parts[i].data)
            assert np.array_equal(ka.a_parts[i].data, kb.a_parts[i].data)
