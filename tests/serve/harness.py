"""Shared harness for the serving-layer tests.

No pytest-asyncio in the image: each test drives its own event loop via
:func:`serve_test`, which starts a real :class:`~repro.serve.ServeApp`
on an ephemeral port, runs the async scenario against it over real TCP,
and always drains the app afterwards.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve import ServeApp, ServeConfig


class Client:
    """A tiny HTTP/1.1 client speaking to the app over real sockets."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    async def raw(self, payload: bytes) -> tuple[int, dict[str, str], bytes]:
        """Send raw bytes, read one full response (connection closes)."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(payload)
        await writer.drain()
        data = await reader.read()
        writer.close()
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, body

    async def call(self, method: str, path: str, payload=None):
        """One request/response; JSON bodies decode automatically."""
        body = b"" if payload is None else json.dumps(payload).encode()
        request = (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode() + body
        status, headers, raw_body = await self.raw(request)
        if headers.get("content-type", "").startswith("application/json"):
            return status, headers, json.loads(raw_body)
        return status, headers, raw_body.decode()


def serve_test(scenario, config: ServeConfig | None = None):
    """Run ``await scenario(app, client)`` against a live app; drain after."""

    async def main():
        app = ServeApp(config or ServeConfig(port=0, window_ms=2.0))
        host, port = await app.start()
        try:
            return await scenario(app, Client(host, port))
        finally:
            await app.shutdown()

    return asyncio.run(main())
