"""End-to-end service tests over real TCP: the full request path,
typed HTTP errors, overload shedding (429s), /metrics, and drain."""

import asyncio
import json

from repro.obs.metrics import validate_prometheus_text
from repro.serve import ServeConfig

from harness import serve_test


def register(client, tenant="acme", **extra):
    return client.call("POST", "/v1/tenants", {"tenant": tenant, "seed": 7, **extra})


def test_register_and_all_three_programs():
    async def scenario(app, client):
        status, _, body = await register(client)
        assert status == 201
        assert body["tenant"] == "acme"
        assert "mult" in body["evk_kinds"]
        assert body["store"]["tenants"] == 1

        status, _, body = await client.call(
            "POST", "/v1/helr/score", {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4]}
        )
        assert status == 200
        assert 0.0 < body["result"]["score"] < 1.0

        status, _, body = await client.call(
            "POST",
            "/v1/sort/compare-swap",
            {"tenant": "acme", "a": [0.5, -0.2], "b": [0.1, 0.3]},
        )
        assert status == 200
        assert len(body["result"]["min"]) == 2

        status, _, body = await client.call(
            "POST",
            "/v1/conv/step",
            {"tenant": "acme", "x": [1.0, 0.0, 0.0, 0.0], "kernel": [0.5, 0.25]},
        )
        assert status == 200
        assert body["result"]["taps"] == 2

    serve_test(scenario)


def test_typed_http_errors():
    async def scenario(app, client):
        await register(client)
        cases = [
            # (method, path, payload, status, error type)
            ("POST", "/v1/helr/score", {"tenant": "ghost", "x": [1]},
             404, "UnknownTenantError"),
            ("POST", "/v1/helr/score", {"tenant": "acme", "x": "nope"},
             400, "ParameterError"),
            ("POST", "/v1/helr/score", {"tenant": "acme", "x": [0.1]},
             400, "ParameterError"),  # wrong feature count
            ("POST", "/v1/tenants", {"tenant": "acme"},
             400, "ParameterError"),  # duplicate registration
            ("POST", "/v1/tenants", {"seed": 1},
             400, "ParameterError"),  # missing id
            ("GET", "/no/such/route", None, 404, "NotFound"),
            ("DELETE", "/metrics", None, 405, "MethodNotAllowed"),
        ]
        for method, path, payload, want_status, want_type in cases:
            status, _, body = await client.call(method, path, payload)
            assert status == want_status, (path, body)
            assert body["error"]["type"] == want_type
        # 405 carries the Allow header
        status, headers, _ = await client.call("DELETE", "/metrics")
        assert headers["allow"] == "GET"

    serve_test(scenario)


def test_malformed_wire_requests_get_wire_errors():
    async def scenario(app, client):
        status, _, body = await client.raw(b"BOGUS\r\n\r\n")
        assert status == 400
        status, _, _ = await client.raw(b"GET / HTTP/3.0\r\n\r\n")
        assert status == 505
        status, _, _ = await client.raw(
            b"POST /v1/tenants HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        )
        assert status == 413

    serve_test(scenario)


def test_rate_limit_sheds_with_retry_after():
    async def scenario(app, client):
        await register(client)
        results = []
        for _ in range(6):
            results.append(
                await client.call(
                    "POST", "/v1/helr/score",
                    {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4]},
                )
            )
        codes = [status for status, _, _ in results]
        assert codes.count(429) >= 2, codes
        status, headers, body = next(r for r in results if r[0] == 429)
        assert body["error"]["type"] == "RateLimitError"
        assert float(headers["retry-after"]) > 0

    serve_test(scenario, ServeConfig(port=0, rate=0.5, burst=2.0, window_ms=1.0))


def test_admission_control_sheds_when_the_queue_fills():
    async def scenario(app, client):
        await register(client)

        async def one():
            return await client.call(
                "POST", "/v1/helr/score",
                {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4]},
            )

        results = await asyncio.gather(*[one() for _ in range(10)])
        codes = [status for status, _, _ in results]
        assert codes.count(200) >= 1, codes
        rejected = [body for status, _, body in results if status == 429]
        assert rejected, codes
        assert all(b["error"]["type"] == "AdmissionError" for b in rejected)
        # shed requests show up on the rejection counter
        _, _, metrics = await client.call("GET", "/metrics")
        assert 'repro_serve_rejected_total{endpoint="helr_score",reason="admission"}' in metrics

    serve_test(
        scenario,
        ServeConfig(port=0, max_pending=2, max_batch=1, window_ms=0.0),
    )


def test_metrics_scrape_is_valid_and_tenant_labelled():
    async def scenario(app, client):
        await register(client)
        await client.call(
            "POST", "/v1/helr/score", {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4]}
        )
        status, headers, text = await client.call("GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        families = validate_prometheus_text(text)  # strict format check
        for family in (
            "repro_serve_requests_total",
            "repro_serve_request_latency_seconds",
            "repro_serve_batch_size",
            "repro_serve_tenants",
            "repro_store_cached_bytes",
            "repro_faults_total",
        ):
            assert family in families, sorted(families)
        ops = families["repro_session_ops_total"]["samples"]
        assert any(labels.get("tenant") == "acme" for _, labels, _ in ops)
        # scrapes are idempotent: a second one stays valid and keeps values
        _, _, text2 = await client.call("GET", "/metrics")
        validate_prometheus_text(text2)

    serve_test(scenario)


def test_per_request_trace_returns_chrome_events():
    async def scenario(app, client):
        await register(client)
        status, _, body = await client.call(
            "POST", "/v1/helr/score",
            {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4], "trace": True},
        )
        assert status == 200
        events = body["trace"]["traceEvents"]
        assert any(e.get("cat") == "op" for e in events)
        assert any(e.get("name") == "hmult" for e in events)
        # tracing is per-request: the next untraced call has no trace
        status, _, body = await client.call(
            "POST", "/v1/helr/score", {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4]}
        )
        assert status == 200 and "trace" not in body

    serve_test(scenario)


def test_healthz_and_tenant_listing():
    async def scenario(app, client):
        status, _, body = await client.call("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        await register(client)
        await register(client, tenant="zeta")
        status, _, body = await client.call("GET", "/v1/tenants")
        assert [t["tenant"] for t in body["tenants"]] == ["acme", "zeta"]
        status, _, body = await client.call("GET", "/v1/tenants/zeta")
        assert status == 200 and body["tenant"] == "zeta"

    serve_test(scenario)


def test_graceful_drain_answers_in_flight_then_refuses():
    async def scenario(app, client):
        await register(client)
        payload = {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4]}

        inflight = asyncio.ensure_future(
            client.call("POST", "/v1/helr/score", payload)
        )
        await asyncio.sleep(0.005)  # let it reach the batcher
        app._draining = True  # what shutdown() sets before draining

        status, _, body = await client.call("POST", "/v1/helr/score", payload)
        assert status == 503
        assert body["error"]["type"] == "ShutdownError"
        status, _, body = await client.call("GET", "/healthz")
        assert body["status"] == "draining"

        status, _, body = await inflight  # accepted before the drain: answered
        assert status == 200, body

    serve_test(scenario, ServeConfig(port=0, window_ms=20.0))


def test_keep_alive_serves_multiple_requests_per_connection():
    async def scenario(app, client):
        reader, writer = await asyncio.open_connection(client.host, client.port)
        for i in range(3):
            writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"200 OK" in head and b"keep-alive" in head
            length = int(
                [ln for ln in head.split(b"\r\n") if ln.lower().startswith(b"content-length")][0].split(b":")[1]
            )
            body = await reader.readexactly(length)
            assert json.loads(body)["status"] == "ok"
        writer.close()

    serve_test(scenario)
