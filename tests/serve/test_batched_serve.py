"""Serve-layer batched execution: coalesced requests run as ONE batched
dispatch, answers stay bit-identical to sequential serving, and the batch
metrics surface the coalescing."""

import asyncio

from repro.serve import ServeConfig

from harness import serve_test

N = 4


def _register(client, tenant="acme"):
    return client.call("POST", "/v1/tenants", {"tenant": tenant, "seed": 7})


async def _staggered(client, path, payloads, gap_s=0.02):
    """Concurrent requests with deterministic ARRIVAL order.

    Encryptor draws are positional, so bit-identity against a sequential
    baseline needs the coalesced batch to hold the payloads in the same
    order the baseline served them; small send gaps inside a wide
    coalescing window pin the order without breaking coalescing.
    """

    async def call_at(i, payload):
        await asyncio.sleep(gap_s * i)
        return await client.call("POST", path, payload)

    return await asyncio.gather(
        *[call_at(i, p) for i, p in enumerate(payloads)]
    )


def _sequential_baseline(program_path, payloads):
    """Serve the same payloads one at a time (no coalescing window)."""
    responses = []

    async def scenario(app, client):
        await _register(client)
        for payload in payloads:
            status, _, body = await client.call("POST", program_path, payload)
            assert status == 200
            responses.append(body["result"])

    serve_test(scenario, ServeConfig(port=0, window_ms=0.0, max_batch=1))
    return responses


def test_coalesced_helr_requests_match_sequential_bit_for_bit():
    payloads = [
        {"tenant": "acme", "x": [0.1 * (i + 1), 0.2, -0.3, 0.4]}
        for i in range(N)
    ]
    baseline = _sequential_baseline("/v1/helr/score", payloads)

    async def scenario(app, client):
        await _register(client)
        # A wide window + exact-size batch coalesces all N concurrent
        # requests into one dispatch.
        results = await _staggered(client, "/v1/helr/score", payloads)
        for (status, _, body), expected in zip(results, baseline):
            assert status == 200
            # Bit-identical: scores are exact float equality, not approx.
            assert body["result"] == expected
        status, _, text = await client.call("GET", "/metrics")
        assert status == 200
        assert 'repro_serve_batched_dispatches_total{program="helr_score"}' in text
        # The batch-size histogram saw a multi-request batch: with one
        # dispatch of N=4, the le=2 bucket stays below the +Inf bucket.
        return text

    text = serve_test(
        scenario, ServeConfig(port=0, window_ms=200.0, max_batch=N)
    )
    batched_line = next(
        line
        for line in text.splitlines()
        if line.startswith("repro_serve_batched_items_total")
        and 'program="helr_score"' in line
    )
    assert float(batched_line.rsplit(" ", 1)[1]) == N


def test_coalesced_compare_swap_matches_sequential_bit_for_bit():
    payloads = [
        {"tenant": "acme", "a": [0.5, -0.2 * (i + 1) / N], "b": [0.1, 0.3]}
        for i in range(N)
    ]
    baseline = _sequential_baseline("/v1/sort/compare-swap", payloads)

    async def scenario(app, client):
        await _register(client)
        results = await _staggered(client, "/v1/sort/compare-swap", payloads)
        for (status, _, body), expected in zip(results, baseline):
            assert status == 200
            # JSON round-trips doubles exactly; equality here is the
            # batched == sequential bit-identity contract on the wire.
            assert body["result"] == expected

    serve_test(scenario, ServeConfig(port=0, window_ms=200.0, max_batch=N))


def test_batched_run_keeps_per_item_validation_errors():
    async def scenario(app, client):
        await _register(client)
        good = {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4]}
        bad = {"tenant": "acme", "x": [0.1]}  # wrong feature count
        results = await asyncio.gather(
            client.call("POST", "/v1/helr/score", good),
            client.call("POST", "/v1/helr/score", bad),
            client.call("POST", "/v1/helr/score", good),
        )
        statuses = [status for status, _, _ in results]
        assert statuses == [200, 400, 200]
        assert results[1][2]["error"]["type"] == "ParameterError"
        # The two good answers are identical bit for bit... to each other?
        # No -- they consumed different encryptor draws; just both valid.
        assert results[0][2]["result"]["features"] == 4

    serve_test(scenario, ServeConfig(port=0, window_ms=200.0, max_batch=3))


def test_batch_size_histogram_shows_multi_request_batches():
    async def scenario(app, client):
        await _register(client)
        payload = {"tenant": "acme", "x": [0.1, 0.2, 0.3, 0.4]}
        await asyncio.gather(
            *[client.call("POST", "/v1/helr/score", payload) for _ in range(N)]
        )
        status, _, text = await client.call("GET", "/metrics")
        assert status == 200
        buckets = {}
        for line in text.splitlines():
            if line.startswith("repro_serve_batch_size_bucket"):
                tag = line.split('le="')[1].split('"')[0]
                buckets[tag] = float(line.rsplit(" ", 1)[1])
        # One batch of N: nothing lands at or below le=2, everything by +Inf.
        assert buckets["2"] < buckets["+Inf"]
        assert buckets["+Inf"] >= 1

    serve_test(scenario, ServeConfig(port=0, window_ms=200.0, max_batch=N))
