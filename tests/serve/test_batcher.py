"""Micro-batcher unit tests: coalescing, triggers, errors, drain."""

import asyncio

import pytest

from repro.errors import ParameterError, ReproError
from repro.serve.batcher import MicroBatcher, ShutdownError


class Recorder:
    """A dispatch stub that records every batch it receives."""

    def __init__(self, result=None):
        self.batches = []
        self._result = result

    async def __call__(self, key, items):
        self.batches.append((key, list(items)))
        if self._result is not None:
            return self._result(key, items)
        return [f"r:{item}" for item in items]


def run(coro):
    return asyncio.run(coro)


def test_window_coalesces_into_one_batch():
    async def main():
        dispatch = Recorder()
        batcher = MicroBatcher(dispatch, max_batch=8, window_s=0.02)
        results = await asyncio.gather(
            batcher.submit("k", 1), batcher.submit("k", 2), batcher.submit("k", 3)
        )
        assert results == ["r:1", "r:2", "r:3"]
        assert len(dispatch.batches) == 1
        assert dispatch.batches[0] == ("k", [1, 2, 3])

    run(main())


def test_size_trigger_flushes_before_the_window():
    async def main():
        dispatch = Recorder()
        batcher = MicroBatcher(dispatch, max_batch=2, window_s=10.0)
        results = await asyncio.gather(
            batcher.submit("k", 1), batcher.submit("k", 2)
        )
        assert results == ["r:1", "r:2"]
        assert len(dispatch.batches) == 1  # no 10 s wait happened

    run(main())


def test_zero_window_dispatches_immediately():
    async def main():
        dispatch = Recorder()
        batcher = MicroBatcher(dispatch, max_batch=8, window_s=0.0)
        assert await batcher.submit("k", 1) == "r:1"
        assert len(dispatch.batches) == 1

    run(main())


def test_distinct_keys_never_share_a_batch():
    async def main():
        dispatch = Recorder()
        batcher = MicroBatcher(dispatch, max_batch=8, window_s=0.02)
        await asyncio.gather(
            batcher.submit(("a", "p"), 1), batcher.submit(("b", "p"), 2)
        )
        assert sorted(key for key, _ in dispatch.batches) == [("a", "p"), ("b", "p")]

    run(main())


def test_exception_slot_fails_only_its_own_future():
    class Boom(ReproError):
        pass

    def result(key, items):
        return [Boom("item 2 failed") if item == 2 else f"r:{item}" for item in items]

    async def main():
        batcher = MicroBatcher(Recorder(result), max_batch=8, window_s=0.01)
        futures = await asyncio.gather(
            batcher.submit("k", 1),
            batcher.submit("k", 2),
            batcher.submit("k", 3),
            return_exceptions=True,
        )
        assert futures[0] == "r:1"
        assert isinstance(futures[1], Boom)
        assert futures[2] == "r:3"

    run(main())


def test_dispatch_failure_fails_the_whole_batch():
    async def dispatch(key, items):
        raise ReproError("backend down")

    async def main():
        batcher = MicroBatcher(dispatch, max_batch=8, window_s=0.01)
        results = await asyncio.gather(
            batcher.submit("k", 1), batcher.submit("k", 2), return_exceptions=True
        )
        assert all(isinstance(r, ReproError) for r in results)

    run(main())


def test_result_count_mismatch_is_typed():
    async def dispatch(key, items):
        return ["only one"]

    async def main():
        batcher = MicroBatcher(dispatch, max_batch=2, window_s=10.0)
        results = await asyncio.gather(
            batcher.submit("k", 1), batcher.submit("k", 2), return_exceptions=True
        )
        assert all(isinstance(r, ParameterError) for r in results)

    run(main())


def test_drain_flushes_queued_work_and_refuses_new():
    async def main():
        dispatch = Recorder()
        batcher = MicroBatcher(dispatch, max_batch=8, window_s=30.0)
        pending = asyncio.ensure_future(batcher.submit("k", 1))
        await asyncio.sleep(0)  # let the submission enqueue
        assert batcher.queued == 1
        assert await batcher.drain(timeout=5.0)
        assert await pending == "r:1"  # answered, not dropped
        with pytest.raises(ShutdownError):
            await batcher.submit("k", 2)

    run(main())


def test_invalid_parameters_rejected():
    for kwargs in ({"max_batch": 0}, {"window_s": -1.0}, {"max_concurrency": 0}):
        with pytest.raises(ParameterError):
            MicroBatcher(Recorder(), **kwargs)


class SlowRecorder:
    """A dispatch stub that records batch ORDER and yields between batches."""

    def __init__(self):
        self.order = []

    async def __call__(self, key, items):
        self.order.append((key, list(items)))
        await asyncio.sleep(0.002)
        return [f"r:{item}" for item in items]


def test_round_robin_drains_across_keys():
    """A tenant saturating the window must not starve other tenants.

    Tenant A floods four full batches; tenant B submits one. With
    ``max_concurrency=1`` the rotation must interleave B's batch after
    A's *first* batch rather than after A's whole backlog.
    """

    async def main():
        dispatch = SlowRecorder()
        batcher = MicroBatcher(
            dispatch, max_batch=2, window_s=10.0, max_concurrency=1
        )
        a_subs = [
            asyncio.ensure_future(batcher.submit(("a", "p"), i)) for i in range(8)
        ]
        await asyncio.sleep(0)  # A's four size-triggered batches are queued
        b_sub = asyncio.ensure_future(batcher.submit(("b", "p"), "b0"))
        await asyncio.sleep(0)
        batcher._flush(("b", "p"))  # B's singleton would otherwise wait out the window
        await asyncio.gather(*a_subs, b_sub)
        keys = [key for key, _ in dispatch.order]
        assert keys.count(("a", "p")) == 4 and keys.count(("b", "p")) == 1
        # B interleaves into A's backlog (behind at most the batch already
        # in flight plus one rotation step), instead of waiting out all
        # four of A's queued batches.
        assert keys.index(("b", "p")) <= 2

    run(main())


def test_concurrency_bound_results_and_drain_stay_correct():
    async def main():
        dispatch = SlowRecorder()
        batcher = MicroBatcher(
            dispatch, max_batch=2, window_s=10.0, max_concurrency=1
        )
        subs = [
            asyncio.ensure_future(batcher.submit((t, "p"), f"{t}{i}"))
            for t in ("a", "b", "c")
            for i in range(2)
        ]
        await asyncio.sleep(0)
        assert await batcher.drain(timeout=5.0)
        results = await asyncio.gather(*subs)
        assert results == [f"r:{t}{i}" for t in ("a", "b", "c") for i in range(2)]

    run(main())
