"""Chaos under load: seeded fault plans against the live service.

The serving extension of the resilience invariant: with a fault injector
armed on the *shared* key store while concurrent requests are in flight,
every 200 response must be bit-identical to a response of the unfaulted
baseline run, and every failure must be a typed 5xx -- never a silently
corrupted score.

Why exact equality is possible: a tenant's encryptor randomness is one
sequential stream, every request encrypts the same number of times
*before* it first touches evaluation keys (the fault surface), and the
single dispatch-executor thread serializes execution. So the i-th request
executed consumes exactly the stream positions the i-th baseline request
consumed -- whether or not a fault fired -- and recovery (regeneration
from seeds) is deterministic. A faulted run's successful responses are
therefore a subset of the baseline's result multiset, byte for byte.
"""

import asyncio
import json
import os

import pytest

from repro.resilience.faults import random_fault_plan
from repro.serve import ServeConfig

from harness import serve_test

BASE = int(os.environ.get("CHAOS_SEED", "0")) * 1000 + 500
PLANS = 8
REQUESTS = 6

PAYLOAD = {"tenant": "acme", "a": [0.5, -0.25, 0.125, 0.0625], "b": [0.1, 0.6, -0.3, 0.2]}

#: 5xx error types the faults may legitimately surface as.
TYPED_FAILURES = {
    "IntegrityError",
    "RecoveryExhaustedError",
    "FaultInjectedError",
}

#: Aggregate across the sweep, asserted non-vacuous at the end.
TOTALS = {"injected": 0, "recovered": 0, "raised_http": 0, "ok": 0}


def run_requests(injector=None):
    """A fresh app + tenant; N identical requests; returns each outcome."""

    async def scenario(app, client):
        status, _, _ = await client.call(
            "POST", "/v1/tenants", {"tenant": "acme", "seed": 7}
        )
        assert status == 201
        if injector is not None:
            app.tenants.arm_faults(injector)

        async def one():
            return await client.call("POST", "/v1/sort/compare-swap", PAYLOAD)

        results = await asyncio.gather(*[one() for _ in range(REQUESTS)])
        stats = app.tenants.resilience.stats
        return results, stats.total_injected, stats.total_recovered

    # A large admission/rate envelope: chaos must shed via faults, not 429s.
    return serve_test(
        scenario,
        ServeConfig(port=0, max_pending=64, rate=1e6, burst=1e6, window_ms=1.0),
    )


@pytest.fixture(scope="module")
def baseline():
    results, injected, _ = run_requests()
    assert injected == 0
    outcomes = [(status, json.dumps(body["result"], sort_keys=True))
                for status, _, body in results]
    assert all(status == 200 for status, _ in outcomes)
    return {blob for _, blob in outcomes}


@pytest.mark.parametrize("i", range(PLANS))
def test_chaos_under_load(baseline, i):
    plan = random_fault_plan(
        BASE + i, evk_targets=("acme/mult", "*"), pt_targets=("*",)
    )
    results, injected, recovered = run_requests(plan.injector())
    TOTALS["injected"] += injected
    TOTALS["recovered"] += recovered
    for status, _, body in results:
        if status == 200:
            TOTALS["ok"] += 1
            blob = json.dumps(body["result"], sort_keys=True)
            assert blob in baseline, (
                f"silent corruption under plan {plan}: {blob[:120]}"
            )
        else:
            TOTALS["raised_http"] += 1
            assert status == 500, (status, body)
            assert body["error"]["type"] in TYPED_FAILURES, body


def test_fault_ledger_reaches_the_metrics_endpoint():
    plan = random_fault_plan(BASE + 71, evk_targets=("*",), pt_targets=("*",))

    async def scenario(app, client):
        await client.call("POST", "/v1/tenants", {"tenant": "acme", "seed": 7})
        app.tenants.arm_faults(plan)
        for _ in range(REQUESTS):
            await client.call("POST", "/v1/sort/compare-swap", PAYLOAD)
        _, _, text = await client.call("GET", "/metrics")
        return text, app.tenants.resilience.stats.total_injected

    text, injected = serve_test(
        scenario, ServeConfig(port=0, rate=1e6, burst=1e6, window_ms=1.0)
    )
    assert "repro_faults_total" in text
    if injected:  # the ledger shows what fired
        assert 'repro_faults_total{event="injected",kind="' in text


def test_chaos_sweep_was_not_vacuous():
    """The sweep must really exercise both outcomes: faults fired, some
    recovered into bit-identical answers, and some surfaced as typed 5xx."""
    assert TOTALS["injected"] > 0
    assert TOTALS["ok"] > 0
    assert TOTALS["recovered"] > 0 or TOTALS["raised_http"] > 0


def test_post_fault_requests_still_serve():
    """After a *recoverable* fault plan exhausts itself, the same app keeps
    answering with clean 200s (a poisoned request must not wedge the
    dispatch loop). Only seed-recoverable kinds here: corrupting a stored
    ``b`` half is permanent by design and would legitimately keep 500ing.
    """
    from repro.resilience.faults import Fault, FaultPlan

    plan = FaultPlan(
        faults=(
            Fault(kind="flip_evk_a", target="*", at_access=1),
            Fault(kind="evict_evk", target="acme/mult", at_access=2),
            Fault(kind="fetch_fail", target="*", at_access=3),
        ),
        seed=BASE + 97,
    )

    async def scenario(app, client):
        await client.call("POST", "/v1/tenants", {"tenant": "acme", "seed": 7})
        app.tenants.arm_faults(plan)
        for _ in range(REQUESTS):
            await client.call("POST", "/v1/sort/compare-swap", PAYLOAD)
        app.tenants.disarm_faults()
        status, _, body = await client.call(
            "POST", "/v1/sort/compare-swap", PAYLOAD
        )
        assert status == 200, body
        status, _, body = await client.call("GET", "/healthz")
        assert body["status"] == "ok"

    serve_test(scenario, ServeConfig(port=0, rate=1e6, burst=1e6, window_ms=1.0))
