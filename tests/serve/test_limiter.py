"""Token-bucket unit tests under an injected clock (no sleeping)."""

import pytest

from repro.errors import ParameterError, RateLimitError
from repro.serve.limiter import TokenBucket


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_burst_then_refusal():
    clock = Clock()
    bucket = TokenBucket(rate=10, burst=3, clock=clock)
    assert all(bucket.try_acquire() for _ in range(3))
    assert not bucket.try_acquire()


def test_refill_at_rate():
    clock = Clock()
    bucket = TokenBucket(rate=10, burst=3, clock=clock)
    for _ in range(3):
        bucket.try_acquire()
    clock.advance(0.1)  # exactly one token matures
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_refill_caps_at_burst():
    clock = Clock()
    bucket = TokenBucket(rate=10, burst=3, clock=clock)
    clock.advance(100.0)
    assert bucket.tokens == pytest.approx(3.0)


def test_retry_after_prices_the_deficit():
    clock = Clock()
    bucket = TokenBucket(rate=10, burst=1, clock=clock)
    bucket.try_acquire()
    assert bucket.retry_after() == pytest.approx(0.1)
    clock.advance(0.05)
    assert bucket.retry_after() == pytest.approx(0.05)


def test_acquire_or_raise_is_typed_with_retry_after():
    clock = Clock()
    bucket = TokenBucket(rate=4, burst=1, clock=clock)
    bucket.acquire_or_raise("acme")
    with pytest.raises(RateLimitError) as err:
        bucket.acquire_or_raise("acme")
    assert err.value.retry_after == pytest.approx(0.25)


def test_invalid_parameters_rejected():
    for rate, burst in ((0, 1), (1, 0), (-1, 1)):
        with pytest.raises(ParameterError):
            TokenBucket(rate=rate, burst=burst)
