"""Routing unit tests: matching, params, 404 vs 405, duplicates."""

import pytest

from repro.errors import ParameterError
from repro.serve.router import MethodNotAllowed, NotFound, Router


def handler(name):
    async def h(request, params):
        return name

    return h


def make():
    router = Router()
    router.get("/v1/tenants", handler("list"))
    router.post("/v1/tenants", handler("register"))
    router.get("/v1/tenants/{tenant}", handler("one"))
    return router


def test_exact_match_resolves_by_method():
    router = make()
    h, params = router.resolve("GET", "/v1/tenants")
    assert params == {}
    h2, _ = router.resolve("POST", "/v1/tenants")
    assert h is not h2


def test_param_segment_captures():
    _, params = make().resolve("GET", "/v1/tenants/acme")
    assert params == {"tenant": "acme"}


def test_trailing_slash_is_equivalent():
    _, params = make().resolve("GET", "/v1/tenants/acme/")
    assert params == {"tenant": "acme"}


def test_unknown_path_is_404():
    with pytest.raises(NotFound) as err:
        make().resolve("GET", "/nope")
    assert err.value.status == 404


def test_wrong_method_is_405_with_allowed():
    with pytest.raises(MethodNotAllowed) as err:
        make().resolve("DELETE", "/v1/tenants")
    assert err.value.status == 405
    assert err.value.allowed == ["GET", "POST"]


def test_param_segments_do_not_swallow_extra_depth():
    with pytest.raises(NotFound):
        make().resolve("GET", "/v1/tenants/acme/extra")


def test_duplicate_route_rejected():
    router = make()
    with pytest.raises(ParameterError):
        router.get("/v1/tenants", handler("again"))
