"""End-to-end SLO + request-log acceptance against the live service.

The two acceptance scenarios from the observability PR:

- **Unfaulted baseline**: every objective reports ``ok`` on
  ``/debug/slo`` with a nonzero remaining error budget, and every
  response carries a resolvable ``X-Request-Id``.
- **Chaos under load**: a seeded fault plan corrupting a stored evk half
  (permanent, unrecoverable by design) drives 5xx responses; the
  availability SLO must reach a ``breach`` verdict, and every failed
  request id must resolve to an access-log record carrying the
  correlated fault-ledger entries.
"""

import json
import os

from repro.resilience.faults import Fault, FaultPlan
from repro.serve import ServeConfig

from harness import serve_test

SEED = int(os.environ.get("CHAOS_SEED", "0")) * 1000 + 314

PAYLOAD = {
    "tenant": "acme",
    "a": [0.5, -0.25, 0.125, 0.0625],
    "b": [0.1, 0.6, -0.3, 0.2],
}


def config(**overrides) -> ServeConfig:
    return ServeConfig(
        port=0, rate=1e6, burst=1e6, window_ms=1.0, **overrides
    )


def test_unfaulted_baseline_is_ok_with_budget_left():
    async def scenario(app, client):
        status, headers, _ = await client.call(
            "POST", "/v1/tenants", {"tenant": "acme", "seed": 7}
        )
        assert status == 201
        assert headers["x-request-id"].startswith("req-")
        for _ in range(5):
            status, headers, body = await client.call(
                "POST", "/v1/sort/compare-swap", PAYLOAD
            )
            assert status == 200
            # The id is stamped into header AND body: one grep resolves.
            assert body["request_id"] == headers["x-request-id"]

        status, _, report = await client.call("GET", "/debug/slo")
        assert status == 200
        assert report["verdict"] == "ok"
        by_name = {s["name"]: s for s in report["slos"]}
        # Global availability + latency plus the auto-declared per-tenant
        # objective from registration.
        assert {"availability", "latency_p95", "availability:acme"} <= set(
            by_name
        )
        avail = by_name["availability"]
        assert not avail["insufficient_data"]
        assert avail["budget"]["remaining"] > 0.0
        assert by_name["availability:acme"]["scope"] == "tenant:acme"

        # The exported family reaches /metrics.
        _, _, text = await client.call("GET", "/metrics")
        assert 'repro_slo_verdict{slo="availability"} 0' in text
        assert "repro_slo_error_budget_remaining" in text

    serve_test(scenario, config())


def test_request_ids_propagate_and_correlate_across_surfaces():
    async def scenario(app, client):
        await client.call("POST", "/v1/tenants", {"tenant": "acme", "seed": 7})

        # A caller-supplied id is honored end to end.
        body = json.dumps(PAYLOAD).encode()
        status, headers, _ = await client.raw(
            b"POST /v1/sort/compare-swap HTTP/1.1\r\nHost: t\r\n"
            b"X-Request-Id: req-caller-00000042\r\n"
            b"Content-Length: " + str(len(body)).encode()
            + b"\r\nConnection: close\r\n\r\n" + body
        )
        assert status == 200
        assert headers["x-request-id"] == "req-caller-00000042"

        # A traced request carries its id inside the Chrome trace too.
        status, headers, traced = await client.call(
            "POST", "/v1/sort/compare-swap", {**PAYLOAD, "trace": True}
        )
        assert status == 200
        rid = headers["x-request-id"]
        assert rid in json.dumps(traced["trace"])

        # Both resolve in the access log, with dispatch facts attached.
        for lookup in ("req-caller-00000042", rid):
            status, _, page = await client.call(
                "GET", f"/debug/requests?request_id={lookup}"
            )
            assert status == 200
            (rec,) = page["requests"]
            assert rec["tenant"] == "acme"
            assert rec["program"] == "compare_swap"
            assert rec["batch_size"] >= 1
            assert rec["outcome"] == "ok"
        status, _, page = await client.call(
            "GET", "/debug/requests?tenant=acme&outcome=ok"
        )
        assert status == 200
        assert len(page["requests"]) >= 2

    serve_test(scenario, config())


def test_chaos_breaches_availability_and_correlates_failures():
    plan = FaultPlan(
        faults=(
            # Corrupting the *stored* half of an evaluation key is
            # permanent: every access after the flip raises a typed
            # IntegrityError, so the 5xx stream is deterministic.
            Fault(kind="flip_evk_b", target="acme/mult", at_access=1),
        ),
        seed=SEED,
    )

    async def scenario(app, client):
        await client.call("POST", "/v1/tenants", {"tenant": "acme", "seed": 7})
        for _ in range(4):
            status, _, _ = await client.call(
                "POST", "/v1/sort/compare-swap", PAYLOAD
            )
            assert status == 200
        app.tenants.arm_faults(plan)

        failed_ids = []
        for _ in range(6):
            status, headers, body = await client.call(
                "POST", "/v1/sort/compare-swap", PAYLOAD
            )
            if status >= 500:
                assert body["error"]["type"] == "IntegrityError"
                failed_ids.append(headers["x-request-id"])
        assert failed_ids, "the armed fault plan never fired"

        status, _, report = await client.call("GET", "/debug/slo")
        assert status == 200
        by_name = {s["name"]: s for s in report["slos"]}
        assert by_name["availability"]["verdict"] == "breach", report
        assert by_name["availability:acme"]["verdict"] == "breach", report
        assert report["verdict"] == "breach"
        assert by_name["availability"]["budget"]["remaining"] == 0.0

        # Every failed id resolves to a record carrying the fault-ledger
        # entries that fired during its dispatch.
        for rid in failed_ids:
            status, _, page = await client.call(
                "GET", f"/debug/requests?request_id={rid}"
            )
            (rec,) = page["requests"]
            assert rec["status"] == 500
            assert rec["error_type"] == "IntegrityError"
            assert rec["outcome"] == "error"
            assert rec["faults"], rec
            assert any(
                f["event"] == "detected" for f in rec["faults"]
            ), rec["faults"]

        # The 5xx family filter finds the same population.
        _, _, page = await client.call("GET", "/debug/requests?status=5xx")
        assert {r["request_id"] for r in page["requests"]} >= set(failed_ids)

        # Breaches are scrapeable.
        _, _, text = await client.call("GET", "/metrics")
        assert 'repro_slo_verdict{slo="availability"} 2' in text
        assert "repro_slo_breaches_total" in text

    serve_test(scenario, config())


def test_wire_errors_still_carry_request_id_and_connection_close():
    async def scenario(app, client):
        status, headers, _ = await client.raw(b"BOGUS\r\n\r\n")
        assert status == 400
        assert headers["connection"] == "close"
        assert headers["x-request-id"].startswith("req-")
        # The framing failure is in the access log too.
        _, _, page = await client.call(
            "GET", f"/debug/requests?request_id={headers['x-request-id']}"
        )
        (rec,) = page["requests"]
        assert rec["path"] == "(wire)"
        assert rec["error_type"] == "WireError"

    serve_test(scenario, config())


def test_error_responses_carry_exactly_one_connection_header():
    async def scenario(app, client):
        # 404 (unknown tenant), 405 (wrong method), 400 (bad JSON): every
        # error path must emit exactly one Connection header even though
        # handlers attach extras (Allow, Retry-After, X-Request-Id).
        cases = [
            ("POST", "/v1/sort/compare-swap", {**PAYLOAD, "tenant": "ghost"}),
            ("PUT", "/v1/tenants", {}),
            ("GET", "/nope", None),
        ]
        for method, path, payload in cases:
            body = b"" if payload is None else json.dumps(payload).encode()
            raw = (
                f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode() + body
            reader_status, headers, _ = await client.raw(raw)
            assert reader_status >= 400
            assert headers["x-request-id"].startswith("req-")
            # client.raw collapses duplicate headers; count on the wire.
            import asyncio

            r, w = await asyncio.open_connection(client.host, client.port)
            w.write(raw)
            await w.drain()
            data = await r.read()
            w.close()
            head = data.partition(b"\r\n\r\n")[0].decode("latin-1").lower()
            assert head.count("connection:") == 1, head
            assert head.count("content-length:") == 1, head

    serve_test(scenario, config())


def test_observability_can_be_disabled():
    async def scenario(app, client):
        assert app.reqlog is None and app.slo is None
        status, _, _ = await client.call("GET", "/debug/slo")
        assert status == 400
        status, _, _ = await client.call("GET", "/debug/requests")
        assert status == 400
        # The hot path still answers (and still stamps ids).
        await client.call("POST", "/v1/tenants", {"tenant": "acme", "seed": 7})
        status, headers, _ = await client.call(
            "POST", "/v1/sort/compare-swap", PAYLOAD
        )
        assert status == 200
        assert headers["x-request-id"].startswith("req-")

    serve_test(scenario, config(request_log=0, slos=False))
