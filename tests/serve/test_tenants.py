"""Multi-tenant isolation properties over the shared key store.

The satellite invariants: tenants never share evk material (even with
identical seeds), cross-tenant lookups fail with a typed
``MissingEvkError``, and LRU eviction pressure from one tenant can
force regeneration -- but never corruption -- of another's results.
"""

import numpy as np
import pytest

from repro.errors import MissingEvkError, ParameterError, UnknownTenantError
from repro.params import TOY
from repro.serve.programs import run_program
from repro.serve.tenants import TenantRegistry

X = [0.5, -0.25, 0.125, 0.0625]
PAYLOAD = {"x": X}


def test_same_seed_tenants_get_disjoint_namespaced_keys():
    reg = TenantRegistry(TOY)
    a = reg.register("alpha", seed=7)
    b = reg.register("beta", seed=7)
    base_kinds = reg.store.kinds()
    assert all(k.startswith(("alpha/", "beta/")) for k in base_kinds)
    assert {k for k in base_kinds if k.startswith("alpha/")} == {
        f"alpha/{k}" for k in reg.store.scoped("alpha").kinds()
    }
    # Identical seeds, yet physically distinct store entries per tenant.
    assert reg.store.get("alpha/mult") is not reg.store.get("beta/mult")
    assert a.sess is not b.sess


def test_cross_tenant_lookup_is_a_typed_missing_key():
    reg = TenantRegistry(TOY)
    reg.register("alpha", seed=7)
    ghost = reg.store.scoped("ghost")
    with pytest.raises(MissingEvkError) as err:
        ghost.get("mult")  # exists for alpha, must be invisible to ghost
    assert "ghost" in str(err.value)
    assert "mult" not in ghost
    assert ghost.kinds() == []


def test_same_seed_tenants_compute_identically_but_independently():
    reg = TenantRegistry(TOY)
    a = reg.register("alpha", seed=7)
    b = reg.register("beta", seed=7)
    out_a = run_program("helr_score", a.sess, a.weights, PAYLOAD)
    out_b = run_program("helr_score", b.sess, b.weights, PAYLOAD)
    # Same seed, same first encryptor position -> bit-identical scores,
    # computed through disjoint key material.
    assert out_a["score"] == out_b["score"]


def test_eviction_pressure_from_one_tenant_never_corrupts_another():
    """Requests under a thrashing shared budget are bit-identical to the
    same requests under an unbounded budget (eviction only ever costs
    regeneration, never correctness)."""
    rounds = 3
    reference = TenantRegistry(TOY)
    ref_a = reference.register("alpha", seed=7)
    ref_outs = [
        run_program("helr_score", ref_a.sess, ref_a.weights, PAYLOAD)["score"]
        for _ in range(rounds)
    ]

    # One expanded evk at TOY scale is ~128 KiB of a-parts; 200 KB cannot
    # hold two tenants' hot sets, so interleaving forces evictions.
    tight = TenantRegistry(TOY, budget_bytes=200_000)
    t_a = tight.register("alpha", seed=7)
    t_b = tight.register("beta", seed=13)
    got = []
    for _ in range(rounds):
        got.append(
            run_program("helr_score", t_a.sess, t_a.weights, PAYLOAD)["score"]
        )
        run_program("helr_score", t_b.sess, t_b.weights, PAYLOAD)
    assert got == ref_outs
    stats = tight.store.stats
    assert stats.evictions > 0, "budget never thrashed; test is vacuous"
    assert tight.store.cached_bytes <= 200_000


def test_footprint_reports_shared_economics():
    reg = TenantRegistry(TOY)
    reg.register("alpha")
    fp = reg.footprint()
    assert fp["tenants"] == 1
    assert 0 < fp["stored_bytes"] < fp["eager_bytes"]
    assert fp["compression"] > 1.5  # the Table III ~2x argument
    view = reg.store.scoped("alpha")
    assert view.stored_bytes == fp["stored_bytes"]


def test_describe_is_namespace_local():
    reg = TenantRegistry(TOY)
    a = reg.register("alpha", weights=[0.1, 0.2, 0.3])
    reg.register("beta")
    desc = reg.describe(a)
    assert desc["tenant"] == "alpha"
    assert desc["features"] == 3
    assert "mult" in desc["evk_kinds"]
    assert all("/" not in k for k in desc["evk_kinds"])


def test_registration_validation():
    reg = TenantRegistry(TOY, max_tenants=2)
    reg.register("ok-tenant.1")
    with pytest.raises(ParameterError):
        reg.register("ok-tenant.1")  # duplicate
    for bad in ("", "-leading", "bad/slash", "x" * 65):
        with pytest.raises(ParameterError):
            reg.register(bad)
    with pytest.raises(ParameterError):
        reg.register("w", weights=[float("nan")])
    with pytest.raises(ParameterError):
        reg.register("w", weights=[[1.0, 2.0]])
    reg.register("second")
    with pytest.raises(ParameterError):
        reg.register("third")  # over max_tenants


def test_unknown_tenant_is_typed():
    reg = TenantRegistry(TOY)
    with pytest.raises(UnknownTenantError):
        reg.get("nobody")


def test_shared_resilience_context_survives_registration():
    reg = TenantRegistry(TOY)
    rc = reg.resilience
    reg.register("alpha")
    reg.register("beta")
    # session() installs its own context on the store; the registry must
    # restore the shared one so faults/integrity stay unified.
    assert reg.store.resilience is rc


def test_weights_array_survives_roundtrip():
    reg = TenantRegistry(TOY)
    t = reg.register("alpha", weights=[0.25, -0.5])
    assert np.array_equal(t.weights, [0.25, -0.5])
