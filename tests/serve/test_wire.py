"""HTTP framing unit tests: parsing limits, typed wire errors, codecs."""

import asyncio

import pytest

from repro.errors import WireError
from repro.serve import wire


def parse(raw: bytes, eof: bool = True):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        if eof:
            reader.feed_eof()
        return await wire.read_request(reader)

    return asyncio.run(main())


def test_parses_request_line_headers_and_body():
    req = parse(
        b"POST /v1/x?q=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 8\r\n"
        b'X-Thing: a b\r\n\r\n{"a": 1}'
    )
    assert req.method == "POST"
    assert req.path == "/v1/x"
    assert req.query == "q=1"
    assert req.headers["x-thing"] == "a b"
    assert req.json() == {"a": 1}


def test_keep_alive_defaults_on_and_honours_close():
    on = parse(b"GET / HTTP/1.1\r\nHost: h\r\n\r\n")
    off = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert on.keep_alive and not off.keep_alive


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_partial_request_is_a_wire_error():
    with pytest.raises(WireError):
        parse(b"GET / HTTP/1.1\r\nHost:")


def test_malformed_request_line_rejected():
    with pytest.raises(WireError):
        parse(b"GET /\r\n\r\n")


def test_wrong_protocol_is_505():
    with pytest.raises(WireError) as err:
        parse(b"GET / HTTP/2.0\r\n\r\n")
    assert err.value.status == 505


def test_chunked_transfer_encoding_rejected():
    with pytest.raises(WireError):
        parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")


def test_bad_content_length_rejected():
    for bad in (b"nope", b"-3"):
        with pytest.raises(WireError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: " + bad + b"\r\n\r\n")


def test_oversized_body_is_413():
    big = wire.MAX_BODY_BYTES + 1
    with pytest.raises(WireError) as err:
        parse(f"POST / HTTP/1.1\r\nContent-Length: {big}\r\n\r\n".encode())
    assert err.value.status == 413


def test_truncated_body_is_a_wire_error():
    with pytest.raises(WireError):
        parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")


def test_body_json_errors_are_typed():
    req = parse(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n{nope")
    with pytest.raises(WireError):
        req.json()


def test_empty_body_decodes_to_empty_object():
    req = parse(b"POST / HTTP/1.1\r\nHost: h\r\n\r\n")
    assert req.json() == {}


def test_response_encoding_carries_status_headers_and_length():
    resp = wire.HttpResponse.json({"ok": True}, status=201, Location="/v1/x")
    raw = resp.encode(keep_alive=False)
    head, _, body = raw.partition(b"\r\n\r\n")
    assert head.startswith(b"HTTP/1.1 201 Created")
    assert b"Location: /v1/x" in head
    assert b"Connection: close" in head
    assert f"Content-Length: {len(body)}".encode() in head


def test_error_envelope_shape():
    resp = wire.HttpResponse.error(429, "RateLimitError", "slow down", retry=1)
    import json

    payload = json.loads(resp.body)
    assert payload["error"]["type"] == "RateLimitError"
    assert payload["error"]["retry"] == 1
    assert resp.status == 429


def test_metrics_content_type():
    resp = wire.HttpResponse.text("x 1\n")
    assert resp.content_type.startswith("text/plain; version=0.0.4")


def test_extra_headers_never_duplicate_the_reserved_set():
    """Regression: a handler attaching Connection/Content-Type/Content-
    Length (any casing) must not produce duplicate header lines -- the
    framing layer's values win."""
    resp = wire.HttpResponse.json(
        {"ok": True},
        **{
            "Connection": "keep-alive",
            "content-type": "text/evil",
            "Content-Length": "9999",
            "X-Request-Id": "req-x-1",
        },
    )
    raw = resp.encode(keep_alive=False)
    head = raw.partition(b"\r\n\r\n")[0].decode("latin-1").lower()
    assert head.count("connection:") == 1
    assert head.count("content-type:") == 1
    assert head.count("content-length:") == 1
    assert "connection: close" in head  # the framing decision, not the extra
    assert "application/json" in head
    assert "x-request-id: req-x-1" in head


def test_non_reserved_extras_pass_through_unchanged():
    resp = wire.HttpResponse.json({}, **{"Retry-After": "0.5", "Allow": "GET"})
    head = resp.encode().partition(b"\r\n\r\n")[0].decode("latin-1")
    assert "Retry-After: 0.5" in head
    assert "Allow: GET" in head
