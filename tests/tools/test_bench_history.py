"""The benchmark trajectory and its trend-aware regression gate."""

import json
import pathlib
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "tools"))

import bench_history  # noqa: E402
from bench_history import (  # noqa: E402
    append_run,
    load_history,
    trend_depth,
    trend_limit,
)


def test_append_and_load_round_trip(tmp_path):
    path = tmp_path / "hist.jsonl"
    append_run("kernels", {"bench_a": 0.010, "bench_b": 0.5}, path=path)
    append_run("kernels", {"bench_a": 0.011}, path=path)
    append_run("serve", {"cell:p95_ms": 42.0}, path=path)
    kernels = load_history("kernels", path)
    assert kernels == [{"bench_a": 0.010, "bench_b": 0.5}, {"bench_a": 0.011}]
    assert load_history("serve", path) == [{"cell:p95_ms": 42.0}]
    assert load_history("kernels", tmp_path / "missing.jsonl") == []


def test_corrupt_lines_are_skipped_not_fatal(tmp_path):
    path = tmp_path / "hist.jsonl"
    append_run("kernels", {"bench_a": 0.01}, path=path)
    with path.open("a") as fh:
        fh.write("{truncated by a ctrl-c\n\n")
    append_run("kernels", {"bench_a": 0.012}, path=path)
    assert len(load_history("kernels", path)) == 2


def test_shallow_history_defers_to_the_baseline_gate():
    history = [{"bench_a": 0.01}] * (bench_history.MIN_HISTORY - 1)
    assert trend_limit(history, "bench_a") is None
    assert trend_limit([], "bench_a") is None
    assert trend_depth(history, "bench_a") == bench_history.MIN_HISTORY - 1


def test_trend_gate_tracks_the_median_not_one_outlier():
    # Nine normal runs around 10ms plus one freak 30ms recording: the
    # gate must follow the 10ms median, unlike a single-baseline check
    # that would have let everything up to 39ms pass had the freak run
    # been the checked-in baseline.
    history = [{"bench_a": 0.010 + 0.0002 * i} for i in range(9)]
    history.append({"bench_a": 0.030})
    limit = trend_limit(history, "bench_a")
    assert limit is not None
    assert limit < 0.015  # well under the outlier
    assert limit > 0.0108  # but with real headroom over the median


def test_near_deterministic_benchmarks_keep_a_relative_floor():
    # MAD of identical values is 0; the gate must still allow REL_FLOOR
    # of headroom instead of failing on the first nanosecond of noise.
    history = [{"bench_a": 0.010}] * 10
    limit = trend_limit(history, "bench_a")
    assert limit == pytest.approx(0.010 * (1.0 + bench_history.REL_FLOOR))


def test_trend_window_ages_out_ancient_runs():
    old = [{"bench_a": 1.0}] * 10  # a slow era, long since fixed
    recent = [{"bench_a": 0.010}] * bench_history.MAX_WINDOW
    limit = trend_limit(old + recent, "bench_a")
    assert limit < 0.10  # the slow era no longer inflates the gate


def test_dry_run_cli_judges_a_report(tmp_path, capsys):
    history = tmp_path / "hist.jsonl"
    for _ in range(bench_history.MIN_HISTORY):
        append_run("kernels", {"bench_a": 0.010}, path=history)
    report = tmp_path / "report.json"
    report.write_text(
        json.dumps(
            {"benchmarks": [{"name": "bench_a", "stats": {"mean": 0.0105}}]}
        )
    )
    assert bench_history._dry_run(report, history) == 0
    report.write_text(
        json.dumps(
            {"benchmarks": [{"name": "bench_a", "stats": {"mean": 0.10}}]}
        )
    )
    assert bench_history._dry_run(report, history) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out


def test_summary_cli_reports_gate_state(tmp_path, capsys, monkeypatch):
    history = tmp_path / "hist.jsonl"
    for _ in range(2):
        append_run("kernels", {"bench_a": 0.010}, path=history)
    monkeypatch.setattr(bench_history, "HISTORY", history)
    assert bench_history.main([]) == 0
    out = capsys.readouterr().out
    assert "gate pending" in out
    for _ in range(bench_history.MIN_HISTORY):
        append_run("kernels", {"bench_a": 0.010}, path=history)
    assert bench_history.main([]) == 0
    assert "gate" in capsys.readouterr().out
