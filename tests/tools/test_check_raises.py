"""The raise-lint gate, run as a tier-1 test: the guarded trees must be
clean, and the checker itself must actually catch offenders."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
TOOL = ROOT / "tools" / "check_raises.py"

sys.path.insert(0, str(ROOT / "tools"))
import check_raises  # noqa: E402


def test_guarded_trees_are_clean():
    trees = [ROOT / tree for tree in check_raises.DEFAULT_TREES]
    assert check_raises.check_trees(trees) == []


def test_whole_library_is_clean():
    """Stricter than the CI default: no bare raises anywhere in repro."""
    assert check_raises.check_trees([ROOT / "src" / "repro"]) == []


def test_checker_flags_offenders(tmp_path):
    offender = tmp_path / "bad.py"
    offender.write_text(
        "def f(x):\n"
        "    if x:\n"
        "        raise ValueError('nope')\n"
        "    raise AssertionError\n"
    )
    findings = check_raises.check_file(offender)
    assert [(line, name) for _, line, name in findings] == [
        (3, "ValueError"),
        (4, "AssertionError"),
    ]


def test_checker_ignores_typed_and_re_raises(tmp_path):
    clean = tmp_path / "ok.py"
    clean.write_text(
        "from repro.errors import ParameterError\n"
        "def f():\n"
        "    try:\n"
        "        raise ParameterError('typed')\n"
        "    except ParameterError:\n"
        "        raise\n"
    )
    assert check_raises.check_file(clean) == []


def test_cli_exit_codes(tmp_path):
    offender = tmp_path / "bad.py"
    offender.write_text("raise ValueError('x')\n")
    ok = subprocess.run(
        [sys.executable, str(TOOL)], cwd=ROOT, capture_output=True
    )
    assert ok.returncode == 0, ok.stdout
    bad = subprocess.run(
        [sys.executable, str(TOOL), str(offender)], cwd=ROOT, capture_output=True
    )
    assert bad.returncode == 1
    assert b"ValueError" in bad.stdout
