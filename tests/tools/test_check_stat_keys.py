"""The STAT_KEYS drift lint, run as a tier-1 test: the evaluator must be
in sync with its declared key set, and the checker must catch drift."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]
TOOL = ROOT / "tools" / "check_stat_keys.py"

sys.path.insert(0, str(ROOT / "tools"))
import check_stat_keys  # noqa: E402


def _write(tmp_path, body: str) -> pathlib.Path:
    path = tmp_path / "evaluator.py"
    path.write_text(body)
    return path


def test_evaluator_is_in_sync():
    assert check_stat_keys.check_file(ROOT / check_stat_keys.DEFAULT_FILE) == []


def test_flags_bump_missing_from_stat_keys(tmp_path):
    path = _write(
        tmp_path,
        'STAT_KEYS = {"mul": ("hmult",)}\n'
        "class E:\n"
        "    def mul(self):\n"
        '        self.stats["hmult"] += 1\n'
        "    def rot(self):\n"
        '        self.stats["hrot"] += 1\n',
    )
    findings = check_stat_keys.check_file(path)
    assert [(line, "hrot" in msg) for _, line, msg in findings] == [(6, True)]


def test_flags_declared_key_nobody_bumps(tmp_path):
    path = _write(
        tmp_path,
        'STAT_KEYS = {"mul": ("hmult",), "rot": ("hrot",)}\n'
        "class E:\n"
        "    def mul(self):\n"
        '        self.stats["hmult"] += 1\n',
    )
    findings = check_stat_keys.check_file(path)
    assert len(findings) == 1
    assert "'hrot'" in findings[0][2] and "no bump site" in findings[0][2]


def test_evk_load_namespace_is_exempt(tmp_path):
    path = _write(
        tmp_path,
        'STAT_KEYS = {"mul": ("hmult",)}\n'
        "class E:\n"
        "    def mul(self, amount):\n"
        '        self.stats["hmult"] += 1\n'
        '        self.stats["evk_load:mult"] += 1\n'
        '        self.stats[f"evk_load:rot:{amount}"] += 1\n',
    )
    assert check_stat_keys.check_file(path) == []


def test_flags_dynamic_keys_outside_namespace(tmp_path):
    path = _write(
        tmp_path,
        "STAT_KEYS = {}\n"
        "class E:\n"
        "    def mul(self, op):\n"
        '        self.stats[f"custom:{op}"] += 1\n'
        "        self.stats[op] += 1\n",
    )
    findings = check_stat_keys.check_file(path)
    assert len(findings) == 2
    assert "namespace" in findings[0][2]
    assert "string literal" in findings[1][2]


def test_cli_exit_codes(tmp_path):
    ok = subprocess.run(
        [sys.executable, str(TOOL)], cwd=ROOT, capture_output=True
    )
    assert ok.returncode == 0, ok.stdout
    offender = _write(
        tmp_path,
        "STAT_KEYS = {}\n"
        "class E:\n"
        "    def mul(self):\n"
        '        self.stats["hmult"] += 1\n',
    )
    bad = subprocess.run(
        [sys.executable, str(TOOL), str(offender)], cwd=ROOT, capture_output=True
    )
    assert bad.returncode == 1
    assert b"hmult" in bad.stdout
