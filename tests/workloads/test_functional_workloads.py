"""Functional encrypted workloads against plaintext references.

The workload algorithms are written once against the unified backend API;
these tests drive them both through the compatibility surface (raw
CkksContext + Ciphertext) and through the session facade.
"""

import numpy as np
import pytest

import repro
from repro.errors import ParameterError
from repro.params import TOY
from repro.ckks.context import CkksContext
from repro.workloads.cnn import encrypted_conv2d, plaintext_conv2d
from repro.workloads.data import synthetic_classification, synthetic_image
from repro.workloads.helr import (
    EncryptedLogisticRegression,
    sigmoid_poly,
)
from repro.workloads.sorting import (
    encrypted_compare_swap,
    sign_approx,
    sign_approx_reference,
)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(TOY, seed=101)


# ------------------------------------------------------------------ data


def test_synthetic_classification_shapes_and_labels():
    x, y = synthetic_classification(64, 8, seed=1)
    assert x.shape == (64, 8)
    assert set(np.unique(y)) == {0.0, 1.0}
    assert np.max(np.abs(x)) <= 1.0


def test_synthetic_classification_is_separable():
    x, y = synthetic_classification(200, 8, seed=2)
    # A trivial mean-difference classifier should beat chance easily.
    direction = x[y == 1].mean(axis=0) - x[y == 0].mean(axis=0)
    predictions = (x @ direction > 0).astype(float)
    assert np.mean(predictions == y) > 0.8


def test_synthetic_image_range():
    img = synthetic_image(8, 8, seed=3)
    assert img.shape == (8, 8)
    assert np.max(np.abs(img)) <= 1.0


# ------------------------------------------------------------------ HELR


def test_encrypted_gradient_matches_plaintext(ctx):
    features = 8
    model = EncryptedLogisticRegression(ctx, features)
    rng = np.random.default_rng(4)
    model.weights = rng.uniform(-0.5, 0.5, features)
    x = rng.uniform(-1, 1, features)
    ct_x = ctx.encrypt(x.astype(np.complex128))
    grad_ct = model.encrypted_gradient(ct_x, label=1.0)
    grad = ctx.decrypt(grad_ct).real[:features]
    expected = model.plaintext_gradient(x, 1.0)
    assert np.allclose(grad, expected, atol=0.05)


def test_training_improves_accuracy(ctx):
    features = 8
    x, y = synthetic_classification(48, features, seed=5)
    model = EncryptedLogisticRegression(ctx, features)
    before = model.accuracy(x, y)
    for xi, yi in zip(x[:24], y[:24]):
        model.step(xi, yi, lr=0.8)
    after = model.accuracy(x, y)
    assert after > max(before, 0.75)


def test_feature_count_validation(ctx):
    with pytest.raises(ParameterError):
        EncryptedLogisticRegression(ctx, 7)


def test_sigmoid_poly_is_sigmoid_like():
    z = np.linspace(-4, 4, 41)
    approx = sigmoid_poly(z)
    true = 1.0 / (1.0 + np.exp(-z))
    # HELR's coefficients are fit over [-8, 8]; on [-4, 4] the worst-case
    # deviation sits near |z| = 2 at ~0.095.
    assert np.max(np.abs(approx - true)) < 0.12


def test_helr_over_session_and_key_reuse(ctx):
    """The same workload through the session facade, with the session's
    evk-usage tally showing the Min-KS reuse pattern."""
    sess = repro.session(ctx=ctx)
    features = 8
    model = EncryptedLogisticRegression(sess, features)
    rng = np.random.default_rng(14)
    model.weights = rng.uniform(-0.5, 0.5, features)
    x = rng.uniform(-1, 1, features)
    ct_x = sess.encrypt(x.astype(np.complex128))
    grad = sess.decrypt(model.encrypted_gradient(ct_x, 1.0)).real[:features]
    assert np.allclose(grad, model.plaintext_gradient(x, 1.0), atol=0.05)
    # The gradient's slot sum chains rotations by 1: a single rotation key.
    rot_keys = [k for k in sess.evk_usage if k.startswith("evk:rot:")]
    assert rot_keys == ["evk:rot:1"]


# ------------------------------------------------------------------- CNN


def test_plaintext_conv_matches_numpy_reference():
    img = synthetic_image(6, 6, seed=6)
    kernel = np.array([[0, 1, 0], [1, -4, 1], [0, 1, 0]], dtype=float)
    ours = plaintext_conv2d(img, kernel)
    # Cross-check with scipy-style explicit loop.
    expected = np.zeros_like(img)
    for y in range(6):
        for x in range(6):
            total = 0.0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    yy, xx = y + dy, x + dx
                    if 0 <= yy < 6 and 0 <= xx < 6:
                        total += kernel[dy + 1, dx + 1] * img[yy, xx]
            expected[y, x] = total
    assert np.allclose(ours, expected)


def test_encrypted_conv_matches_plaintext(ctx):
    height = width = 8
    img = synthetic_image(height, width, seed=7)
    kernel = np.array(
        [[0.05, 0.1, 0.05], [0.1, 0.4, 0.1], [0.05, 0.1, 0.05]]
    )
    ct = ctx.encrypt(img.reshape(-1).astype(np.complex128))
    out_ct = encrypted_conv2d(ctx, ct, kernel, height, width)
    out = ctx.decrypt(out_ct).real.reshape(height, width)
    expected = plaintext_conv2d(img, kernel)
    assert np.allclose(out, expected, atol=0.05)


def test_encrypted_conv_rejects_bad_packing(ctx):
    ct = ctx.encrypt(np.zeros(16))
    with pytest.raises(ParameterError):
        encrypted_conv2d(ctx, ct, np.ones((3, 3)) / 9, 8, 8)


def test_conv_rejects_even_kernel():
    with pytest.raises(ParameterError):
        plaintext_conv2d(np.zeros((4, 4)), np.ones((2, 2)))


# ---------------------------------------------------------------- sorting


def test_sign_reference_sharpens():
    x = np.linspace(-1, 1, 101)
    once = sign_approx_reference(x, 1)
    thrice = sign_approx_reference(x, 3)
    # More iterations push values toward +-1 away from 0.
    assert np.all(np.abs(thrice[np.abs(x) > 0.3]) >= np.abs(once[np.abs(x) > 0.3]) - 1e-9)


def test_encrypted_sign(ctx):
    rng = np.random.default_rng(8)
    x = rng.uniform(-1, 1, ctx.params.max_slots)
    ct = ctx.encrypt(x.astype(np.complex128))
    out = ctx.decrypt(sign_approx(ctx, ct, iterations=2)).real
    expected = sign_approx_reference(x, 2)
    assert np.allclose(out, expected, atol=0.05)


def test_encrypted_compare_swap(ctx):
    rng = np.random.default_rng(9)
    # Keep a clear separation so 2 sign iterations saturate.
    a = rng.uniform(-1, 1, ctx.params.max_slots)
    b = np.where(a > 0, a - 0.8, a + 0.8)
    ct_min, ct_max = encrypted_compare_swap(
        ctx,
        ctx.encrypt(a.astype(np.complex128)),
        ctx.encrypt(b.astype(np.complex128)),
    )
    got_min = ctx.decrypt(ct_min).real
    got_max = ctx.decrypt(ct_max).real
    # The sign approximation is soft; allow tolerance proportional to gap.
    assert np.allclose(got_min, np.minimum(a, b), atol=0.15)
    assert np.allclose(got_max, np.maximum(a, b), atol=0.15)
    assert np.all(got_max - got_min > -0.05)
