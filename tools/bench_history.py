#!/usr/bin/env python
"""Benchmark history: a JSONL trajectory and a trend-aware regression gate.

Every ``benchmarks/run_bench.py`` invocation appends one line to
``BENCH_history.jsonl`` at the repository root -- the run's per-benchmark
means (kernel suites) or per-cell stats (serve load) plus a wall-clock
timestamp. The history turns the perf gate from "no worse than 1.3x the
single checked-in baseline" (one noisy recording decides everything) into
a trend judgment: a fresh mean fails when it exceeds the *median* of the
recorded history by more than a robust tolerance derived from the median
absolute deviation (MAD), so a noisy-but-normal run passes and a genuine
drift fails even if the checked-in baseline happened to be slow.

With fewer than ``MIN_HISTORY`` recorded runs for a benchmark the gate
falls back to the classic single-baseline ratio check -- the caller keeps
its old limit and the history quietly accumulates until it is deep enough
to trust.

Usage (library)::

    from bench_history import append_run, load_history, trend_limit

    history = load_history("kernels")
    limit_s = trend_limit(history, "test_bench_ntt")   # None -> fall back
    append_run("kernels", {"test_bench_ntt": 0.0123})

Usage (CLI)::

    python tools/bench_history.py           # summarize the trajectory
    python tools/bench_history.py --dry-run BENCH_kernels.json
"""

from __future__ import annotations

import json
import pathlib
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
HISTORY = ROOT / "BENCH_history.jsonl"

#: Runs a benchmark must appear in before the trend gate takes over.
MIN_HISTORY = 5
#: History depth consulted per benchmark (older entries age out of the
#: judgment but stay in the file as the permanent trajectory).
MAX_WINDOW = 50
#: Tolerance: median + max(MAD_SIGMAS * 1.4826 * MAD, REL_FLOOR * median).
#: 1.4826 scales MAD to a standard deviation under normality; the relative
#: floor keeps near-deterministic benchmarks (MAD ~ 0) from gating on
#: scheduler noise.
MAD_SIGMAS = 5.0
REL_FLOOR = 0.10


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _mad(values: list[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


# ------------------------------------------------------------------ storage

def append_run(
    kind: str,
    means: dict[str, float],
    path: pathlib.Path = HISTORY,
    meta: dict | None = None,
) -> None:
    """Append one run's ``{benchmark: mean_seconds}`` to the trajectory."""
    entry = {"ts": time.time(), "kind": kind, "means": dict(means)}
    if meta:
        entry.update(meta)
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")


def load_history(
    kind: str, path: pathlib.Path = HISTORY
) -> list[dict[str, float]]:
    """Oldest-first per-run means for ``kind``; tolerant of a missing or
    partially corrupt file (a bad line is someone's interrupted run, not a
    reason to break the gate)."""
    if not path.exists():
        return []
    runs = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if entry.get("kind") == kind and isinstance(entry.get("means"), dict):
            runs.append(
                {
                    str(k): float(v)
                    for k, v in entry["means"].items()
                    if isinstance(v, (int, float))
                }
            )
    return runs


# --------------------------------------------------------------- trend gate

def trend_limit(
    history: list[dict[str, float]],
    name: str,
    *,
    min_history: int = MIN_HISTORY,
    window: int = MAX_WINDOW,
) -> float | None:
    """The largest acceptable mean for ``name``, or None when history is
    too shallow for a trend judgment (caller falls back to its baseline
    ratio check)."""
    values = [run[name] for run in history if name in run][-window:]
    if len(values) < min_history:
        return None
    center = _median(values)
    tolerance = max(MAD_SIGMAS * 1.4826 * _mad(values, center), REL_FLOOR * center)
    return center + tolerance


def trend_depth(history: list[dict[str, float]], name: str) -> int:
    return sum(1 for run in history if name in run)


# ---------------------------------------------------------------------- CLI

def _summarize(path: pathlib.Path) -> int:
    if not path.exists():
        print(f"no history at {path}")
        return 1
    for kind in ("kernels", "serve"):
        history = load_history(kind, path)
        if not history:
            continue
        names = sorted({name for run in history for name in run})
        print(f"{kind}: {len(history)} run(s), {len(names)} benchmark(s)")
        for name in names:
            values = [run[name] for run in history if name in run]
            center = _median(values)
            limit = trend_limit(history, name)
            gate = f"gate {limit * 1e3:9.3f} ms" if limit is not None else (
                f"gate pending ({len(values)}/{MIN_HISTORY} runs)"
            )
            print(
                f"  {name:45s} median {center * 1e3:9.3f} ms  "
                f"last {values[-1] * 1e3:9.3f} ms  {gate}"
            )
    return 0


def _dry_run(report_path: pathlib.Path, history_path: pathlib.Path) -> int:
    """Judge a pytest-benchmark JSON report against the trend gate without
    appending it -- CI's advisory preview."""
    report = json.loads(report_path.read_text())
    means = {
        bench["name"]: bench["stats"]["mean"]
        for bench in report.get("benchmarks", [])
    }
    history = load_history("kernels", history_path)
    failures = 0
    for name, mean in sorted(means.items()):
        limit = trend_limit(history, name)
        if limit is None:
            print(f"  {name:45s} {mean * 1e3:9.3f} ms  (no trend yet)")
            continue
        flag = "ok" if mean <= limit else "REGRESSED"
        failures += mean > limit
        print(
            f"  {name:45s} {mean * 1e3:9.3f} ms  "
            f"gate {limit * 1e3:9.3f} ms  {flag}"
        )
    print(f"trend dry-run: {failures} over the gate")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--dry-run":
        if len(argv) != 2:
            print("usage: bench_history.py --dry-run <benchmark-report.json>")
            return 2
        return _dry_run(pathlib.Path(argv[1]), HISTORY)
    return _summarize(HISTORY)


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
