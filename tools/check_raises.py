#!/usr/bin/env python
"""AST lint: library code must raise typed ReproError subclasses.

Walks the given source trees (default: the runtime stores and the backend
layer, where recovery logic catches exceptions by type) and flags any
``raise ValueError(...)`` / ``raise AssertionError(...)``: callers of the
resilience layer dispatch on :class:`repro.errors.ReproError` subclasses,
so a bare builtin escaping a store would bypass every recovery path.

Exit code 1 when findings exist (CI gate); the findings name the file,
line, and the typed error to use instead. Usage::

    python tools/check_raises.py                 # default trees
    python tools/check_raises.py src/repro       # whole library
"""

from __future__ import annotations

import ast
import pathlib
import sys

FORBIDDEN = {
    "ValueError": "ParameterError (or a more specific ReproError)",
    "AssertionError": "a typed ReproError -- asserts vanish under -O",
}
DEFAULT_TREES = ("src/repro/runtime", "src/repro/backend")


def check_file(path: pathlib.Path) -> list[tuple[pathlib.Path, int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in FORBIDDEN:
            findings.append((path, node.lineno, exc.id))
    return sorted(findings)


def check_trees(trees) -> list[tuple[pathlib.Path, int, str]]:
    findings = []
    for tree in trees:
        root = pathlib.Path(tree)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            findings.extend(check_file(path))
    return findings


def main(argv: list[str]) -> int:
    trees = argv or list(DEFAULT_TREES)
    findings = check_trees(trees)
    for path, lineno, name in findings:
        print(f"{path}:{lineno}: raise {name} -- use {FORBIDDEN[name]}")
    if findings:
        print(f"{len(findings)} forbidden raise(s); see repro/errors.py")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
