#!/usr/bin/env python
"""AST lint: the evaluator's stats keys and STAT_KEYS must agree.

``CkksEvaluator`` bumps ``self.stats[...]`` counters and declares the full
static key set in ``STAT_KEYS`` (the scheme shared by the backends, the
trace cross-checks, and the telemetry adapters). The two drift silently:
a new op that bumps a key without declaring it vanishes from every
consumer of ``STAT_KEYS``, and a declared key no op bumps makes the
cross-checks vacuous. This lint walks the evaluator's AST and flags:

* static ``self.stats["k"] += ...`` keys missing from ``STAT_KEYS``;
* ``STAT_KEYS`` entries no bump site uses;
* dynamic (f-string or computed) keys outside the ``evk_load:`` namespace,
  the one sanctioned dynamic family.

Exit code 1 when findings exist (CI gate). Usage::

    python tools/check_stat_keys.py                          # default file
    python tools/check_stat_keys.py path/to/evaluator.py     # explicit
"""

from __future__ import annotations

import ast
import pathlib
import sys

DEFAULT_FILE = "src/repro/ckks/evaluator.py"
DYNAMIC_NAMESPACE = "evk_load:"


def _declared_keys(tree: ast.Module) -> tuple[set[str], int]:
    """The STAT_KEYS value set and the line it is declared on."""
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == "STAT_KEYS"):
            continue
        if not isinstance(value, ast.Dict):
            raise SystemExit(f"STAT_KEYS at line {node.lineno} is not a dict literal")
        keys: set[str] = set()
        for entry in value.values:
            elts = entry.elts if isinstance(entry, (ast.Tuple, ast.List)) else [entry]
            for elt in elts:
                if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                    raise SystemExit(
                        f"STAT_KEYS value at line {entry.lineno} is not a "
                        "string literal"
                    )
                keys.add(elt.value)
        return keys, node.lineno
    raise SystemExit("no STAT_KEYS dict found")


def _is_stats_subscript(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "stats"
    )


def _bumped_keys(tree: ast.Module):
    """(static keys with lines, findings-for-dynamic-keys) from bump sites."""
    static: dict[str, int] = {}
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.AugAssign) or not _is_stats_subscript(node.target):
            continue
        key = node.target.slice
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            if key.value.startswith(DYNAMIC_NAMESPACE):
                continue  # the sanctioned dynamic family, spelled statically
            static.setdefault(key.value, node.lineno)
        elif isinstance(key, ast.JoinedStr):
            head = key.values[0] if key.values else None
            prefix = head.value if isinstance(head, ast.Constant) else ""
            if not str(prefix).startswith(DYNAMIC_NAMESPACE):
                findings.append(
                    (node.lineno,
                     "dynamic stats key outside the "
                     f"{DYNAMIC_NAMESPACE}* namespace")
                )
        else:
            findings.append(
                (node.lineno, "stats key is not a string literal or f-string")
            )
    return static, findings


def check_file(path: pathlib.Path) -> list[tuple[pathlib.Path, int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    declared, decl_line = _declared_keys(tree)
    static, dynamic_findings = _bumped_keys(tree)
    out = [(path, line, msg) for line, msg in dynamic_findings]
    for key, line in sorted(static.items(), key=lambda kv: kv[1]):
        if key not in declared:
            out.append(
                (path, line, f"stats key {key!r} bumped here but not in STAT_KEYS")
            )
    for key in sorted(declared - set(static)):
        out.append(
            (path, decl_line,
             f"STAT_KEYS declares {key!r} but no bump site uses it")
        )
    return sorted(out, key=lambda f: (f[1], f[2]))


def main(argv: list[str]) -> int:
    paths = [pathlib.Path(p) for p in (argv or [DEFAULT_FILE])]
    findings = []
    for path in paths:
        findings.extend(check_file(path))
    for path, lineno, msg in findings:
        print(f"{path}:{lineno}: {msg}")
    if findings:
        print(f"{len(findings)} STAT_KEYS drift finding(s)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
